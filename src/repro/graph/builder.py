"""Forward graph builder with shape inference.

The seven benchmark model definitions (``repro.models``) are written
against this builder. It mirrors how the quantized ONNX graphs the paper
compiles look: GEMM-class operators consume INT8 activations and produce
INT32 accumulator outputs (Table 3), non-GEMM operators compute in INT32,
and ``Cast`` nodes appear wherever an INT32 activation feeds a GEMM-class
consumer ("Cast ... Any Inference" in Table 1).
"""

from __future__ import annotations

from math import prod
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .model import Graph
from .node import Node
from .tensor import TensorSpec


def _broadcast(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(np.broadcast_shapes(a, b))


def conv_out_hw(h: int, w: int, kernel: Tuple[int, int], stride: int,
                pad: int) -> Tuple[int, int]:
    """Output height/width of a convolution (floor arithmetic)."""
    kh, kw = kernel
    return ((h + 2 * pad - kh) // stride + 1, (w + 2 * pad - kw) // stride + 1)


class GraphBuilder:
    """Builds a :class:`Graph` forward, inferring shapes as it goes.

    All tensor-producing methods return the output tensor name so calls
    chain naturally: ``x = b.relu(b.conv(x, 64, 3))``.
    """

    def __init__(self, name: str):
        self.graph = Graph(name)
        self._counter = 0

    # -- plumbing ------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def _spec(self, name: str) -> TensorSpec:
        return self.graph.tensor(name)

    def _emit(self, op_type: str, inputs: List[str], out_shape: Sequence[int],
              dtype: str, attrs: Optional[dict] = None,
              params: Optional[List[str]] = None, prefix: Optional[str] = None) -> str:
        prefix = prefix or op_type.lower()
        out = self._fresh(prefix)
        self.graph.add_tensor(TensorSpec(out, tuple(out_shape), dtype))
        self.graph.add_node(
            Node(
                name=self._fresh(f"n_{prefix}"),
                op_type=op_type,
                inputs=list(inputs),
                outputs=[out],
                attrs=dict(attrs or {}),
                params=list(params or []),
            )
        )
        return out

    def _param(self, prefix: str, shape: Sequence[int], dtype: str) -> str:
        name = self._fresh(prefix)
        self.graph.add_tensor(TensorSpec(name, tuple(shape), dtype))
        return name

    def _as_int8(self, x: str) -> str:
        """Insert a Cast to INT8 if ``x`` is not already GEMM-ingestible."""
        if self._spec(x).dtype == "int8":
            return x
        return self.cast(x, "int8")

    # Public aliases for model code that needs parameter tensors or custom
    # node shapes (e.g. LayerNorm gamma/beta, attention masks).
    def param(self, prefix: str, shape: Sequence[int], dtype: str = "int32") -> str:
        """Register a weight/constant tensor and return its name."""
        return self._param(prefix, shape, dtype)

    def emit(self, op_type: str, inputs: List[str], out_shape: Sequence[int],
             dtype: str = "int32", attrs: Optional[dict] = None,
             params: Optional[List[str]] = None) -> str:
        """Append one op node; returns the output tensor name."""
        return self._emit(op_type, inputs, out_shape, dtype, attrs, params)

    def spec(self, name: str) -> TensorSpec:
        """The spec of a previously-emitted tensor."""
        return self._spec(name)

    # -- graph boundary --------------------------------------------------------
    def input(self, name: str, shape: Sequence[int], dtype: str = "int8") -> str:
        """Declare the graph input tensor."""
        self.graph.add_tensor(TensorSpec(name, tuple(shape), dtype))
        self.graph.mark_input(name)
        return name

    def finish(self, outputs: Iterable[str]) -> Graph:
        """Mark outputs and return the finished Graph."""
        for out in outputs:
            self.graph.mark_output(out)
        self.graph.validate()
        return self.graph

    # -- GEMM-class operators ----------------------------------------------------
    def conv(self, x: str, out_channels: int, kernel: int, stride: int = 1,
             pad: Optional[int] = None, groups: int = 1, bias: bool = True) -> str:
        """2-D convolution (+ optional bias), NCHW."""
        x = self._as_int8(x)
        n, c, h, w = self._spec(x).shape
        pad = kernel // 2 if pad is None else pad
        oh, ow = conv_out_hw(h, w, (kernel, kernel), stride, pad)
        weight = self._param("w_conv", (out_channels, c // groups, kernel, kernel), "int8")
        params = [weight]
        if bias:
            params.append(self._param("b_conv", (out_channels,), "int32"))
        attrs = {
            "kernel_shape": (kernel, kernel),
            "strides": (stride, stride),
            "pads": (pad, pad),
            "groups": groups,
            "in_channels": c,
            "out_channels": out_channels,
        }
        return self._emit("Conv", [x], (n, out_channels, oh, ow), "int32",
                          attrs, params)

    def depthwise_conv(self, x: str, kernel: int, stride: int = 1,
                       pad: Optional[int] = None) -> str:
        """Depth-wise convolution — reduction-class per Table 1, and executed
        natively by the Tandem Processor rather than the GEMM unit."""
        n, c, h, w = self._spec(x).shape
        pad = kernel // 2 if pad is None else pad
        oh, ow = conv_out_hw(h, w, (kernel, kernel), stride, pad)
        weight = self._param("w_dw", (c, 1, kernel, kernel), "int32")
        attrs = {
            "kernel_shape": (kernel, kernel),
            "strides": (stride, stride),
            "pads": (pad, pad),
            "groups": c,
            "in_channels": c,
            "out_channels": c,
        }
        return self._emit("DepthwiseConv", [x], (n, c, oh, ow), "int32",
                          attrs, [weight], prefix="dwconv")

    def gemm(self, x: str, out_features: int, bias: bool = True) -> str:
        """Fully-connected layer: (N, K) x (K, M) -> (N, M)."""
        x = self._as_int8(x)
        shape = self._spec(x).shape
        n, k = shape[0], shape[-1]
        lead = shape[:-1]
        weight = self._param("w_fc", (k, out_features), "int8")
        params = [weight]
        if bias:
            params.append(self._param("b_fc", (out_features,), "int32"))
        attrs = {"k": k, "out_features": out_features}
        return self._emit("Gemm", [x], (*lead, out_features), "int32", attrs, params)

    def matmul(self, a: str, b: str) -> str:
        """Activation x activation matmul (attention scores / context)."""
        a = self._as_int8(a)
        b = self._as_int8(b)
        sa, sb = self._spec(a).shape, self._spec(b).shape
        if sa[-1] != sb[-2]:
            raise ValueError(f"matmul shape mismatch {sa} x {sb}")
        lead = _broadcast(sa[:-2], sb[:-2])
        out_shape = (*lead, sa[-2], sb[-1])
        return self._emit("MatMul", [a, b], out_shape, "int32", {"k": sa[-1]})

    def linear_weights_matmul(self, x: str, out_features: int) -> str:
        """MatMul against a weight parameter (transformer projections)."""
        x = self._as_int8(x)
        shape = self._spec(x).shape
        k = shape[-1]
        weight = self._param("w_mm", (k, out_features), "int8")
        return self._emit("MatMul", [x], (*shape[:-1], out_features), "int32",
                          {"k": k}, [weight])

    # -- element-wise math -----------------------------------------------------
    def _binary(self, op: str, a: str, b: str) -> str:
        shape = _broadcast(self._spec(a).shape, self._spec(b).shape)
        return self._emit(op, [a, b], shape, "int32")

    def add(self, a: str, b: str) -> str:
        """Elementwise addition."""
        return self._binary("Add", a, b)

    def sub(self, a: str, b: str) -> str:
        """Elementwise subtraction."""
        return self._binary("Sub", a, b)

    def mul(self, a: str, b: str) -> str:
        """Elementwise multiplication."""
        return self._binary("Mul", a, b)

    def div(self, a: str, b: str) -> str:
        """Elementwise division."""
        return self._binary("Div", a, b)

    def pow(self, a: str, b: str) -> str:
        """Elementwise power."""
        return self._binary("Pow", a, b)

    def _unary(self, op: str, x: str, attrs: Optional[dict] = None) -> str:
        return self._emit(op, [x], self._spec(x).shape, "int32", attrs)

    def exp(self, x: str) -> str:
        """Elementwise exponential."""
        return self._unary("Exp", x)

    def sqrt(self, x: str) -> str:
        """Elementwise square root."""
        return self._unary("Sqrt", x)

    def erf(self, x: str) -> str:
        """Elementwise error function (GeLU's kernel)."""
        return self._unary("Erf", x)

    def reciprocal(self, x: str) -> str:
        """Elementwise reciprocal."""
        return self._unary("Reciprocal", x)

    def add_scalar(self, x: str, value: float) -> str:
        """Add a scalar constant to every element."""
        scalar = self._param("c_scalar", (1,), "int32")
        return self._emit("Add", [x], self._spec(x).shape, "int32",
                          {"scalar": value}, [scalar])

    def mul_scalar(self, x: str, value: float) -> str:
        """Multiply every element by a scalar constant."""
        scalar = self._param("c_scalar", (1,), "int32")
        return self._emit("Mul", [x], self._spec(x).shape, "int32",
                          {"scalar": value}, [scalar])

    def div_scalar(self, x: str, value: float) -> str:
        """Divide every element by a scalar constant."""
        scalar = self._param("c_scalar", (1,), "int32")
        return self._emit("Div", [x], self._spec(x).shape, "int32",
                          {"scalar": value}, [scalar])

    # -- activations -------------------------------------------------------------
    def relu(self, x: str) -> str:
        """ReLU activation."""
        return self._unary("Relu", x)

    def leaky_relu(self, x: str, alpha: float = 0.1) -> str:
        """LeakyReLU activation with the given slope."""
        return self._unary("LeakyRelu", x, {"alpha": alpha})

    def clip(self, x: str, lo: float = 0.0, hi: float = 6.0) -> str:
        """Clamp every element into [lo, hi]."""
        return self._unary("Clip", x, {"min": lo, "max": hi})

    def sigmoid(self, x: str) -> str:
        """Sigmoid activation."""
        return self._unary("Sigmoid", x)

    def tanh(self, x: str) -> str:
        """Tanh activation."""
        return self._unary("Tanh", x)

    def gelu(self, x: str) -> str:
        """GeLU activation (the paper's flagship emerging operator)."""
        return self._unary("Gelu", x)

    def silu(self, x: str) -> str:
        """SiLU activation (x * sigmoid(x)), the SwiGLU gate kernel."""
        return self._unary("Silu", x)

    def swiglu(self, gate: str, up: str) -> str:
        """SwiGLU gated activation: silu(gate) * up (LLaMA-family FFN)."""
        if self._spec(gate).shape != self._spec(up).shape:
            raise ValueError(
                f"swiglu shape mismatch {self._spec(gate).shape} vs "
                f"{self._spec(up).shape}")
        return self._emit("SwiGLU", [gate, up], self._spec(gate).shape, "int32")

    # -- reductions ----------------------------------------------------------------
    def maxpool(self, x: str, kernel: int, stride: Optional[int] = None,
                pad: int = 0) -> str:
        """2-D max pooling."""
        stride = stride or kernel
        n, c, h, w = self._spec(x).shape
        oh, ow = conv_out_hw(h, w, (kernel, kernel), stride, pad)
        attrs = {"kernel_shape": (kernel, kernel), "strides": (stride, stride),
                 "pads": (pad, pad)}
        return self._emit("MaxPool", [x], (n, c, oh, ow), "int32", attrs)

    def avgpool(self, x: str, kernel: int, stride: Optional[int] = None,
                pad: int = 0) -> str:
        """2-D average pooling."""
        stride = stride or kernel
        n, c, h, w = self._spec(x).shape
        oh, ow = conv_out_hw(h, w, (kernel, kernel), stride, pad)
        attrs = {"kernel_shape": (kernel, kernel), "strides": (stride, stride),
                 "pads": (pad, pad)}
        return self._emit("AveragePool", [x], (n, c, oh, ow), "int32", attrs)

    def global_avgpool(self, x: str) -> str:
        """Global average pooling to 1x1."""
        n, c, h, w = self._spec(x).shape
        return self._emit("GlobalAveragePool", [x], (n, c, 1, 1), "int32",
                          {"reduced": h * w})

    def reduce_mean(self, x: str, axis: int, keepdims: bool = True) -> str:
        """Mean reduction over one axis."""
        shape = list(self._spec(x).shape)
        axis = axis % len(shape)
        reduced = shape[axis]
        if keepdims:
            shape[axis] = 1
        else:
            del shape[axis]
        return self._emit("ReduceMean", [x], shape, "int32",
                          {"axis": axis, "keepdims": keepdims, "reduced": reduced})

    def softmax(self, x: str, axis: int = -1) -> str:
        """Softmax over the last axis."""
        return self._unary("Softmax", x, {"axis": axis})

    def causal_softmax(self, x: str, offset: int = 0) -> str:
        """Fused masked softmax over the last axis of attention scores.

        ``x`` is (..., q_len, k_len); key column ``j`` is visible to query
        row ``p`` iff ``j <= p + offset`` (``offset`` = tokens already in
        the KV-cache). Masked columns contribute exactly zero probability,
        so a decode step over the full max-context cache ignores the
        not-yet-written tail without a separate mask tensor.
        """
        shape = self._spec(x).shape
        if len(shape) < 2:
            raise ValueError(f"causal_softmax needs (..., q, k), got {shape}")
        return self._unary("CausalSoftmax", x, {"axis": -1, "offset": offset})

    def rms_norm(self, x: str) -> str:
        """RMSNorm over the last axis with a learned gamma scale."""
        shape = self._spec(x).shape
        gamma = self._param("w_rms", (shape[-1],), "int32")
        return self._emit("RMSNorm", [x], shape, "int32",
                          {"axis": -1, "reduced": shape[-1]}, [gamma])

    def rope(self, x: str) -> str:
        """Rotary position embedding over interleaved (even, odd) pairs.

        ``x`` is (..., seq, head_dim); the cos/sin tables are parameters of
        shape (seq, head_dim // 2) whose *values* carry the absolute
        position (so a decode step binds tables sliced at the current
        offset — the graph itself is position-agnostic).
        """
        shape = self._spec(x).shape
        if len(shape) < 2 or shape[-1] % 2:
            raise ValueError(f"rope needs (..., seq, even head_dim), got {shape}")
        seq, half = shape[-2], shape[-1] // 2
        cos = self._param("c_ropecos", (seq, half), "int32")
        sin = self._param("c_ropesin", (seq, half), "int32")
        return self._emit("Rope", [x], shape, "int32", {"half": half},
                          [cos, sin])

    # -- layout ----------------------------------------------------------------------
    def transpose(self, x: str, perm: Sequence[int]) -> str:
        """Permute tensor dimensions."""
        shape = self._spec(x).shape
        out_shape = tuple(shape[p] for p in perm)
        return self._emit("Transpose", [x], out_shape, self._spec(x).dtype,
                          {"perm": tuple(perm)})

    def reshape(self, x: str, shape: Sequence[int]) -> str:
        """Reshape without moving data."""
        spec = self._spec(x)
        shape = tuple(shape)
        if prod(shape) != spec.numel:
            raise ValueError(f"reshape {spec.shape} -> {shape} changes element count")
        return self._emit("Reshape", [x], shape, spec.dtype, {"shape": shape})

    def flatten(self, x: str) -> str:
        """Flatten to (N, -1)."""
        spec = self._spec(x)
        return self._emit("Flatten", [x], (spec.shape[0], prod(spec.shape[1:])),
                          spec.dtype)

    def concat(self, xs: Sequence[str], axis: int = 1) -> str:
        """Concatenate tensors along one axis."""
        specs = [self._spec(x) for x in xs]
        shape = list(specs[0].shape)
        shape[axis] = sum(s.shape[axis] for s in specs)
        return self._emit("Concat", list(xs), shape, specs[0].dtype, {"axis": axis})

    def cache_append(self, cache: str, new: str, axis: int, offset: int,
                     perm: Optional[Sequence[int]] = None) -> str:
        """Scatter ``new`` into ``cache`` at ``offset`` along ``axis``.

        The output has the cache's (max-context) shape; only the appended
        slice moves through the DAE — O(new tokens) DRAM traffic per decode
        step. ``perm`` optionally permutes ``new`` on the way out (e.g. the
        K-cache stores keys pre-transposed for the score matmul).
        """
        cache_shape = self._spec(cache).shape
        new_shape = self._spec(new).shape
        laid = tuple(new_shape[p] for p in perm) if perm else tuple(new_shape)
        if len(laid) != len(cache_shape):
            raise ValueError(
                f"cache_append rank mismatch {laid} vs {cache_shape}")
        for d, (n, c) in enumerate(zip(laid, cache_shape)):
            if d != axis and n != c:
                raise ValueError(
                    f"cache_append dim {d} mismatch {laid} vs {cache_shape}")
        if offset < 0 or offset + laid[axis] > cache_shape[axis]:
            raise ValueError(
                f"cache_append slice [{offset}:{offset + laid[axis]}] exceeds "
                f"cache extent {cache_shape[axis]}")
        attrs = {"axis": axis, "offset": offset}
        if perm:
            attrs["perm"] = tuple(perm)
        return self._emit("CacheAppend", [cache, new], cache_shape, "int32",
                          attrs, prefix="kvcache")

    def resize(self, x: str, scale: int = 2) -> str:
        """Nearest-neighbour spatial upsampling."""
        n, c, h, w = self._spec(x).shape
        return self._emit("Resize", [x], (n, c, h * scale, w * scale),
                          self._spec(x).dtype, {"scale": scale})

    # -- type conversion ------------------------------------------------------------
    def cast(self, x: str, dtype: str) -> str:
        """Cast to another dtype."""
        return self._emit("Cast", [x], self._spec(x).shape, dtype, {"to": dtype})
