"""ONNX-like graph IR substrate.

Everything above this layer (models, compiler, baselines, analysis) works
in terms of :class:`Graph`, :class:`Node`, and :class:`TensorSpec`.
"""

from .builder import GraphBuilder, conv_out_hw
from .model import Graph, GraphError, NodeCost
from .node import Node, conv_macs
from .ops import (
    NON_GEMM_CLASSES,
    TABLE1_EXAMPLES,
    OpClass,
    OpInfo,
    all_ops,
    class_of,
    is_gemm_op,
    is_registered,
    op_info,
)
from .tensor import DTYPE_BYTES, TensorSpec

__all__ = [
    "DTYPE_BYTES",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Node",
    "NodeCost",
    "NON_GEMM_CLASSES",
    "OpClass",
    "OpInfo",
    "TABLE1_EXAMPLES",
    "TensorSpec",
    "all_ops",
    "class_of",
    "conv_macs",
    "conv_out_hw",
    "is_gemm_op",
    "is_registered",
    "op_info",
]
