"""Graph nodes: one operator application with named tensor edges."""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod
from typing import Any, Dict, List

from .ops import OpClass, OpInfo, op_info


@dataclass
class Node:
    """One operator instance in a model graph.

    ``inputs``/``outputs`` are tensor names resolved against the owning
    :class:`~repro.graph.model.Graph`. ``attrs`` carries ONNX-style
    attributes (kernel_shape, strides, axis, ...). Weight/constant inputs
    are listed in ``params`` rather than ``inputs`` so dataflow analyses
    see only activation edges.
    """

    name: str
    op_type: str
    inputs: List[str]
    outputs: List[str]
    attrs: Dict[str, Any] = field(default_factory=dict)
    params: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Fails fast on unregistered operators.
        op_info(self.op_type)

    @property
    def info(self) -> OpInfo:
        return op_info(self.op_type)

    @property
    def op_class(self) -> OpClass:
        return self.info.op_class

    @property
    def is_gemm(self) -> bool:
        return self.info.is_gemm

    def attr(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)


def conv_macs(node: Node, out_shape) -> int:
    """MAC count of a Conv/DepthwiseConv node given its output shape."""
    kh, kw = node.attrs["kernel_shape"]
    if node.op_type == "DepthwiseConv":
        channels_in_per_out = 1
    else:
        channels_in_per_out = node.attrs["in_channels"] // node.attrs.get("groups", 1)
    return prod(out_shape) * kh * kw * channels_in_per_out
