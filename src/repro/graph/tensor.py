"""Tensor metadata for the graph IR.

The IR carries *specs* (shape + dtype), not values. Values only appear
inside the functional simulator and the numpy reference executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Tuple

#: Bytes per element for every dtype the stack understands. The GEMM unit
#: multiplies in INT8 and accumulates in INT32 (Table 3); the Tandem
#: Processor computes in INT32; fixed-point casts target FXP16/8/4.
DTYPE_BYTES = {
    "int8": 1,
    "int16": 2,
    "int32": 4,
    "fxp4": 1,  # stored one-per-byte in our model; packing is a cast detail
    "fxp8": 1,
    "fxp16": 2,
    "fxp32": 4,
    "fp32": 4,
}


@dataclass(frozen=True)
class TensorSpec:
    """Shape + dtype of one tensor edge in the graph."""

    name: str
    shape: Tuple[int, ...]
    dtype: str = "int32"

    def __post_init__(self) -> None:
        if self.dtype not in DTYPE_BYTES:
            raise ValueError(f"unknown dtype {self.dtype!r} for tensor {self.name!r}")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"non-positive dim in shape {self.shape} of {self.name!r}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def numel(self) -> int:
        return prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.numel * DTYPE_BYTES[self.dtype]

    def with_shape(self, shape: Tuple[int, ...], name: str) -> "TensorSpec":
        """Derive a tensor with the same dtype but a new shape/name."""
        return TensorSpec(name=name, shape=tuple(shape), dtype=self.dtype)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        dims = "x".join(str(d) for d in self.shape)
        return f"{self.name}:{self.dtype}[{dims}]"
