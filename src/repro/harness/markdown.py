"""Markdown report generation (the body of EXPERIMENTS.md)."""

from __future__ import annotations

from typing import List, Optional

from .experiments import all_experiment_ids, run_experiment

#: Paper order for the report body.
DEFAULT_ORDER = [
    "table1", "table2", "table3", "fig01", "fig02", "fig03", "fig05",
    "fig06", "fig08", "fig14", "fig15", "fig16", "fig17", "fig18",
    "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
    "fig26",
]


def experiments_markdown(ids: Optional[List[str]] = None) -> str:
    """Render every experiment as a markdown section with a code block."""
    ids = ids or DEFAULT_ORDER
    missing = [exp_id for exp_id in ids if exp_id not in all_experiment_ids()]
    if missing:
        raise KeyError(f"unknown experiments: {missing}")
    sections = []
    for exp_id in ids:
        experiment = run_experiment(exp_id)
        sections.append(
            f"## {exp_id}: {experiment.title}\n\n"
            f"```\n{experiment.render()}\n```\n")
    return "\n".join(sections)


def write_experiments_body(path: str,
                           ids: Optional[List[str]] = None) -> None:
    with open(path, "w") as handle:
        handle.write(experiments_markdown(ids))
