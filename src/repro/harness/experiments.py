"""Experiment registry: one entry per paper table/figure.

Each experiment recomputes its figure from the library and pairs the
measured numbers with the paper's reported ones. The benchmark suite
(``benchmarks/``) runs these and asserts the *shape* (who wins, rough
factors); ``python -m repro.harness`` renders EXPERIMENTS.md content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from .. import analysis
from ..baselines import (
    A100,
    JETSON_XAVIER_NX,
    RTX_2080_TI,
    CpuFallbackDesign,
    DedicatedUnitsDesign,
    GemminiDesign,
    GpuDesign,
    TpuVpuDesign,
)
from ..graph import NON_GEMM_CLASSES, TABLE1_EXAMPLES, OpClass
from ..models import DISPLAY_NAMES, MODEL_ORDER, build_model
from ..npu import NPUTandem, iso_a100_config, table3_config
from ..results import RunResult
from ..runtime import cached_evaluate
from .paper_data import PAPER
from .report import paper_vs_measured, render_table


@dataclass
class Experiment:
    """One paper figure/table: an id, a title, and a builder."""
    id: str
    title: str
    summary: Dict[str, Tuple[object, object]]  # metric -> (paper, measured)
    table: str = ""
    notes: str = ""

    def render(self) -> str:
        """The figure/table as fixed-width text."""
        parts = [paper_vs_measured(self.summary, f"{self.id}: {self.title}")]
        if self.table:
            parts.append(self.table)
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)


EXPERIMENTS: Dict[str, Callable[[], Experiment]] = {}


def experiment(exp_id: str):
    """Decorator registering a builder under an experiment id."""
    def wrap(fn: Callable[[], Experiment]) -> Callable[[], Experiment]:
        EXPERIMENTS[exp_id] = fn
        return fn
    return wrap


def run_experiment(exp_id: str) -> Experiment:
    """Build one experiment by id (raises KeyError on unknown)."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
    return fn()


def all_experiment_ids() -> List[str]:
    """Every registered experiment id, sorted."""
    return sorted(EXPERIMENTS)


# ---------------------------------------------------------------------------
# Shared evaluations
#
# All of these flow through the content-addressed runtime cache
# (:mod:`repro.runtime.cache`): NPU-backed designs hit the result tier
# inside :meth:`NPUTandem.evaluate`, analytic baselines go through
# :func:`cached_evaluate`. Repeat calls — within one process or across
# harness invocations sharing ``.repro_cache`` — reuse prior sweeps, and
# any change to a design's parameters changes the key.
# ---------------------------------------------------------------------------
def npu_results() -> Dict[str, RunResult]:
    """Cached NPU results for the whole zoo."""
    npu = NPUTandem()
    return {m: npu.evaluate(m) for m in MODEL_ORDER}


def baseline1_results() -> Dict[str, RunResult]:
    """Cached CPU-fallback (Baseline 1) results."""
    design = CpuFallbackDesign()
    return {m: cached_evaluate(design, m) for m in MODEL_ORDER}


def baseline2_results() -> Dict[str, RunResult]:
    """Cached dedicated-units (Baseline 2) results."""
    design = DedicatedUnitsDesign()
    return {m: cached_evaluate(design, m) for m in MODEL_ORDER}


def gemmini_results(cores: int) -> Dict[str, RunResult]:
    """Cached Gemmini results at the given vector width."""
    design = GemminiDesign(cores)
    return {m: cached_evaluate(design, m) for m in MODEL_ORDER}


def vpu_ladders() -> Dict[str, Dict[str, RunResult]]:
    """Cached TPU-VPU results across vector-lane ladders."""
    design = TpuVpuDesign()
    return {m: design.ablation_ladder(m) for m in MODEL_ORDER}


def gpu_results(which: str, mode: str) -> Dict[str, RunResult]:
    """Cached GPU results for one chip/runtime."""
    params = {"jetson": JETSON_XAVIER_NX, "rtx": RTX_2080_TI,
              "a100": A100}[which]
    design = GpuDesign(params, mode)
    return {m: cached_evaluate(design, m) for m in MODEL_ORDER}


def scaled_npu_results() -> Dict[str, RunResult]:
    """Cached NPU results at a scaled configuration."""
    npu = NPUTandem(iso_a100_config())
    return {m: npu.evaluate(m) for m in MODEL_ORDER}


def _avg(values) -> float:
    values = list(values)
    return sum(values) / len(values)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------
@experiment("table1")
def table1_operator_classes() -> Experiment:
    """Table 1: operator-class taxonomy over the zoo."""
    rows = []
    measured_classes = {}
    for cls in NON_GEMM_CLASSES:
        used = set()
        for model in MODEL_ORDER:
            for node in build_model(model).nodes:
                if node.op_class is cls:
                    used.add(node.op_type)
        measured_classes[cls] = used
        rows.append((cls.value, ", ".join(sorted(used))))
    from ..compiler import TEMPLATES
    summary = {}
    for cls, examples in TABLE1_EXAMPLES.items():
        compilable = sum(1 for op in examples if op in TEMPLATES)
        summary[f"{cls.name.lower()}_examples_compilable"] = (
            len(examples), compilable)
    return Experiment(
        id="table1",
        title="Non-GEMM operator classes across the benchmark suite",
        summary=summary,
        table=render_table(("class", "operators used by the 7 benchmarks"),
                           rows))


@experiment("table2")
def table2_design_classes() -> Experiment:
    """Table 2: the design classes compared in the paper."""
    rows = [
        ("offchip CPU fallback", "no", "no", "yes", "yes"),
        ("dedicated on-chip units", "yes", "yes", "no", "no"),
        ("on-chip RISC-V core", "partial", "partial", "yes", "partial"),
        ("general-purpose vector unit", "yes", "partial", "yes", "no"),
        ("Tandem Processor (this work)", "yes", "yes", "yes", "yes"),
    ]
    # The library instantiates every class as an executable design point.
    implemented = {
        "offchip CPU fallback": CpuFallbackDesign,
        "dedicated on-chip units": DedicatedUnitsDesign,
        "on-chip RISC-V core": GemminiDesign,
        "general-purpose vector unit": TpuVpuDesign,
        "Tandem Processor (this work)": NPUTandem,
    }
    summary = {"design_classes_implemented": (5, len(implemented))}
    return Experiment(
        id="table2",
        title="Design classes for non-GEMM support (capability matrix)",
        summary=summary,
        table=render_table(
            ("design class", "in tandem", "specialized", "programmable",
             "exec control"), rows))


@experiment("table3")
def table3_configuration() -> Experiment:
    """Table 3: the evaluated NPU configuration."""
    config = table3_config()
    paper = PAPER["table3"]
    tandem = config.sim.tandem
    summary = {
        "systolic_dims": (paper["systolic_dims"],
                          (config.gemm.rows, config.gemm.cols)),
        "tandem_lanes": (paper["tandem_lanes"], tandem.lanes),
        "systolic_spad_kb": (paper["systolic_spad_kb"],
                             config.gemm.weight_spad_kb),
        "interim_buf_total_kb": (paper["interim_buf_total_kb"],
                                 2 * tandem.interim_buf_kb),
        "accumulators_kb": (paper["accumulators_kb"], tandem.obuf_kb),
        "frequency_ghz": (paper["frequency_ghz"],
                          tandem.frequency_hz / 1e9),
    }
    return Experiment(id="table3", title="NPU-Tandem configuration",
                      summary=summary)


# ---------------------------------------------------------------------------
# Characterization figures (Section 2)
# ---------------------------------------------------------------------------
@experiment("fig01")
def fig01_operator_diversity() -> Experiment:
    """Fig. 1: distinct non-GEMM operators per model."""
    stats = analysis.operator_diversity()
    rows = [(DISPLAY_NAMES[s.model], s.year, s.nongemm_types,
             *(s.types_per_class[c] for c in NON_GEMM_CLASSES))
            for s in stats]
    first, last = stats[0], stats[-1]
    summary = {
        "first_gen_nongemm_types (VGG-16 ~3)": (3, min(s.nongemm_types for s in stats)),
        "language_model_nongemm_types (~10)": (
            10, max(s.nongemm_types for s in stats)),
        "diversity_grows_over_time": (
            True, stats[-1].nongemm_types > stats[0].nongemm_types),
    }
    return Experiment(
        id="fig01", title="Neural operators in representative DNNs over the years",
        summary=summary,
        table=render_table(
            ("model", "year", "non-GEMM types", "elemwise", "activation",
             "reduction", "layout", "typeconv"), rows))


@experiment("fig02")
def fig02_cumulative_ops() -> Experiment:
    """Fig. 2: cumulative new operators across models."""
    cumulative = analysis.cumulative_usage()
    rows = [(DISPLAY_NAMES[c.model], c.cumulative_gemm, c.cumulative_nongemm,
             c.gemm_fraction) for c in cumulative]
    final = cumulative[-1]
    summary = {
        "gemm_fraction_all_models": (
            PAPER["fig02"]["gemm_fraction_all_models"], final.gemm_fraction),
        "nongemm_surges_with_new_models": (
            True,
            cumulative[-1].cumulative_nongemm
            > 4 * cumulative[0].cumulative_nongemm),
    }
    return Experiment(
        id="fig02", title="Cumulative GEMM vs non-GEMM operator usage",
        summary=summary,
        table=render_table(("through model", "cum. GEMM", "cum. non-GEMM",
                            "GEMM fraction"), rows))


@experiment("fig03")
def fig03_runtime_breakdown() -> Experiment:
    """Fig. 3: GEMM vs non-GEMM runtime share."""
    data = analysis.figure3()
    rows = []
    for model, per_design in data.items():
        for design, frac in per_design.items():
            rows.append((DISPLAY_NAMES[model], design, frac["gemm"],
                         frac["nongemm"], frac["comm"]))
    eff_b2 = data["efficientnet"]["baseline2"]["nongemm"]
    eff_gpu = data["efficientnet"]["a100"]["nongemm"]
    newer = ["efficientnet", "bert", "gpt2"]
    older = ["vgg16"]
    newer_share = _avg(data[m]["baseline2"]["nongemm"] for m in newer)
    older_share = _avg(data[m]["baseline2"]["nongemm"] for m in older)
    summary = {
        "efficientnet_nongemm_share_baseline2": (
            PAPER["fig03"]["efficientnet_nongemm_share_baseline2"], eff_b2),
        "efficientnet_nongemm_share_gpu": (
            PAPER["fig03"]["efficientnet_nongemm_share_gpu"], eff_gpu),
        "newer_models_more_nongemm_bound": (
            True, newer_share > older_share),
    }
    return Experiment(
        id="fig03", title="Runtime breakdown across platforms",
        summary=summary,
        table=render_table(("model", "design", "gemm", "non-GEMM", "PCIe"),
                           rows))


@experiment("fig05")
def fig05_roofline() -> Experiment:
    """Fig. 5: roofline placement of non-GEMM operators."""
    points = analysis.roofline()
    rows = [(p.operator, p.arithmetic_intensity, p.attainable_gops,
             "memory" if p.memory_bound else "compute") for p in points]
    by_op = {p.operator: p for p in points}
    paper = PAPER["fig05"]
    mem_ok = all(by_op[o].memory_bound for o in paper["memory_bound_ops"])
    cmp_ok = all(not by_op[o].memory_bound for o in paper["compute_bound_ops"])
    summary = {
        "memory_bound_ops_match": (True, mem_ok),
        "softmax_gelu_compute_bound": (True, cmp_ok),
        "ridge_point_ops_per_byte": (1.0, analysis.ridge_point()),
    }
    return Experiment(
        id="fig05", title="Roofline for prevalent non-GEMM operators",
        summary=summary,
        table=render_table(("operator", "ops/byte", "attainable GOPS",
                            "bound"), rows))


@experiment("fig06")
def fig06_overheads() -> Experiment:
    """Fig. 6: non-GEMM overhead per design class."""
    results = analysis.overhead_analysis()
    averages = analysis.average_overheads(results)
    paper = PAPER["fig06"]
    summary = {
        "regfile_ldst_nongemm": (paper["regfile_ldst_nongemm"],
                                 averages["regfile_ldst"]["nongemm"]),
        "regfile_ldst_e2e": (paper["regfile_ldst_e2e"],
                             averages["regfile_ldst"]["e2e"]),
        "address_calc_nongemm": (paper["address_calc_nongemm"],
                                 averages["address_calc"]["nongemm"]),
        "address_calc_e2e": (paper["address_calc_e2e"],
                             averages["address_calc"]["e2e"]),
        "loop_logic_nongemm": (paper["loop_logic_nongemm"],
                               averages["loop_logic"]["nongemm"]),
        "loop_logic_e2e": (paper["loop_logic_e2e"],
                           averages["loop_logic"]["e2e"]),
    }
    rows = [(r.model, r.mechanism, r.nongemm_overhead, r.e2e_overhead)
            for r in results]
    return Experiment(
        id="fig06", title="Overheads the Tandem specializations remove",
        summary=summary,
        table=render_table(("model", "mechanism", "non-GEMM overhead",
                            "e2e overhead"), rows))


@experiment("fig08")
def fig08_utilization() -> Experiment:
    """Fig. 8: unit utilization, NPU vs baseline."""
    comparisons = analysis.utilization_comparison()
    rows = [(c.model, c.gemm_util_tile, c.gemm_util_layer, c.tandem_util_tile,
             c.tandem_util_layer) for c in comparisons]
    paper = PAPER["fig08"]
    summary = {
        "gemm_utilization_gain": (paper["gemm_utilization_gain"],
                                  _avg(c.gemm_gain for c in comparisons)),
        "tandem_utilization_gain": (paper["tandem_utilization_gain"],
                                    _avg(c.tandem_gain for c in comparisons)),
        # Utilizations are read from the npu.* telemetry counters;
        # utilization_comparison raises if they drift from the analytic
        # RunResult fields, so reaching this line proves agreement.
        "counters_agree_with_analytic": (True, True),
    }
    return Experiment(
        id="fig08", title="Tile- vs layer-granularity utilization",
        summary=summary,
        table=render_table(("model", "gemm tile", "gemm layer", "tandem tile",
                            "tandem layer"), rows))


# ---------------------------------------------------------------------------
# Main results (Section 8)
# ---------------------------------------------------------------------------
@experiment("fig14")
def fig14_speedups() -> Experiment:
    """Fig. 14: end-to-end speedup over Baseline 1."""
    npu = npu_results()
    b1 = baseline1_results()
    b2 = baseline2_results()
    s1 = {m: b1[m].total_seconds / npu[m].total_seconds for m in MODEL_ORDER}
    s2 = {m: b2[m].total_seconds / npu[m].total_seconds for m in MODEL_ORDER}
    paper = PAPER["fig14"]
    summary = {
        "avg_speedup_vs_baseline1": (paper["avg_speedup_vs_baseline1"],
                                     _avg(s1.values())),
        "avg_speedup_vs_baseline2": (paper["avg_speedup_vs_baseline2"],
                                     _avg(s2.values())),
        "mobilenetv2_speedup_vs_baseline1": (
            paper["mobilenetv2_speedup_vs_baseline1"], s1["mobilenetv2"]),
        "bert_speedup_vs_baseline1": (
            paper["bert_speedup_vs_baseline1"], s1["bert"]),
    }
    rows = [(DISPLAY_NAMES[m], s1[m], s2[m]) for m in MODEL_ORDER]
    return Experiment(
        id="fig14", title="Speedup vs off-chip-CPU and dedicated-unit baselines",
        summary=summary,
        table=render_table(("model", "vs baseline1", "vs baseline2"), rows))


@experiment("fig15")
def fig15_energy() -> Experiment:
    """Fig. 15: energy reduction over Baseline 1."""
    npu = npu_results()
    b1 = baseline1_results()
    b2 = baseline2_results()
    e1 = {m: b1[m].energy_joules / npu[m].energy_joules for m in MODEL_ORDER}
    e2 = {m: b2[m].energy_joules / npu[m].energy_joules for m in MODEL_ORDER}
    paper = PAPER["fig15"]
    summary = {
        "avg_energy_reduction_vs_baseline1": (
            paper["avg_energy_reduction_vs_baseline1"], _avg(e1.values())),
        "avg_energy_reduction_vs_baseline2": (
            paper["avg_energy_reduction_vs_baseline2"], _avg(e2.values())),
    }
    rows = [(DISPLAY_NAMES[m], e1[m], e2[m]) for m in MODEL_ORDER]
    return Experiment(
        id="fig15", title="Energy reduction vs baselines",
        summary=summary,
        table=render_table(("model", "vs baseline1", "vs baseline2"), rows))


@experiment("fig16")
def fig16_gemmini() -> Experiment:
    """Fig. 16: speedup over Gemmini."""
    npu = npu_results()
    gm1 = gemmini_results(1)
    gm32 = gemmini_results(32)
    s1 = {m: gm1[m].total_seconds / npu[m].total_seconds for m in MODEL_ORDER}
    s32 = {m: gm32[m].total_seconds / npu[m].total_seconds for m in MODEL_ORDER}
    self_improve = _avg(gm1[m].total_seconds / gm32[m].total_seconds
                        for m in MODEL_ORDER)
    paper = PAPER["fig16"]
    summary = {
        "avg_speedup_vs_gemmini": (paper["avg_speedup_vs_gemmini"],
                                   _avg(s1.values())),
        "avg_speedup_vs_gemmini_multicore": (
            paper["avg_speedup_vs_gemmini_multicore"], _avg(s32.values())),
        "multicore_gemmini_self_improvement": (
            paper["multicore_gemmini_self_improvement"], self_improve),
        "max_multicore_speedup_model": (
            paper["max_speedup_vs_multicore"][0],
            max(s32, key=s32.get)),
        "min_multicore_speedup_model": (
            paper["min_speedup_vs_multicore"][0],
            min(s32, key=s32.get)),
    }
    rows = [(DISPLAY_NAMES[m], s1[m], s32[m]) for m in MODEL_ORDER]
    return Experiment(
        id="fig16", title="Comparison with Gemmini (1 core and 32 cores)",
        summary=summary,
        table=render_table(("model", "vs 1-core", "vs 32-core"), rows))


@experiment("fig17")
def fig17_gemmini_breakdown() -> Experiment:
    """Fig. 17: Gemmini runtime breakdown."""
    data = analysis.figure17()
    rows = [(DISPLAY_NAMES[m], f["gemm"], f["im2col_dedicated"], f["riscv"])
            for m, f in data.items()]
    paper = PAPER["fig17"]
    summary = {
        "mobilenetv2_im2col_share": (
            paper["mobilenetv2_im2col_share"],
            data["mobilenetv2"]["im2col_dedicated"]),
        "efficientnet_im2col_share": (
            paper["efficientnet_im2col_share"],
            data["efficientnet"]["im2col_dedicated"]),
        "riscv_dominates_bert": (True, data["bert"]["riscv"] > 0.5),
        "riscv_dominates_gpt2": (True, data["gpt2"]["riscv"] > 0.5),
        "riscv_dominates_yolov3": (True, data["yolov3"]["riscv"] > 0.5),
    }
    return Experiment(
        id="fig17", title="Gemmini runtime breakdown",
        summary=summary,
        table=render_table(("model", "gemm", "im2col+dedicated", "riscv"),
                           rows))


def _ladder_factor(ladders, frm: str, to: str) -> float:
    return _avg(ladders[m][frm].total_seconds / ladders[m][to].total_seconds
                for m in MODEL_ORDER)


@experiment("fig18")
def fig18_vpu_speedup() -> Experiment:
    """Fig. 18: speedup vs the TPU-style VPU."""
    ladders = vpu_ladders()
    paper = PAPER["fig18"]
    final = {m: ladders[m]["vpu"].total_seconds
             / ladders[m]["tandem"].total_seconds for m in MODEL_ORDER}
    summary = {
        "avg_speedup_vs_vpu": (paper["avg_speedup_vs_vpu"],
                               _avg(final.values())),
        "regfile_removal_factor": (
            paper["regfile_removal_factor"],
            _ladder_factor(ladders, "vpu", "no_regfile")),
        "loop_specialization_factor": (
            paper["loop_specialization_factor"],
            _ladder_factor(ladders, "no_regfile", "no_regfile_loops")),
        "obuf_ownership_factor": (
            paper["obuf_ownership_factor"],
            _ladder_factor(ladders, "no_regfile_loops",
                           "no_regfile_loops_fifo")),
        "special_function_factor": (
            paper["special_function_factor"],
            _ladder_factor(ladders, "no_regfile_loops_fifo", "tandem")),
    }
    rows = [(DISPLAY_NAMES[m], final[m]) for m in MODEL_ORDER]
    return Experiment(
        id="fig18", title="Speedup vs TPU+VPU with per-decision ablation",
        summary=summary,
        table=render_table(("model", "end-to-end speedup vs VPU"), rows))


@experiment("fig19")
def fig19_vpu_energy() -> Experiment:
    """Fig. 19: energy vs the TPU-style VPU."""
    ladders = vpu_ladders()
    paper = PAPER["fig19"]
    ratio = {m: ladders[m]["vpu"].energy_joules
             / ladders[m]["tandem"].energy_joules for m in MODEL_ORDER}
    summary = {
        "avg_energy_reduction_vs_vpu": (
            paper["avg_energy_reduction_vs_vpu"], _avg(ratio.values())),
        "mobilenetv2": (paper["mobilenetv2"], ratio["mobilenetv2"]),
        "gpt2": (paper["gpt2"], ratio["gpt2"]),
        "vgg16": (paper["vgg16"], ratio["vgg16"]),
    }
    rows = [(DISPLAY_NAMES[m], ratio[m]) for m in MODEL_ORDER]
    return Experiment(
        id="fig19", title="Energy reduction vs TPU+VPU",
        summary=summary,
        table=render_table(("model", "energy reduction vs VPU"), rows))


@experiment("fig20")
def fig20_perf_per_watt() -> Experiment:
    """Fig. 20: performance per watt vs GPUs."""
    npu = npu_results()
    jetson = gpu_results("jetson", "tensorrt")
    rtx = gpu_results("rtx", "tensorrt")
    vs_jetson = {m: npu[m].perf_per_watt() / jetson[m].perf_per_watt()
                 for m in MODEL_ORDER}
    rtx_vs_jetson = _avg(rtx[m].perf_per_watt() / jetson[m].perf_per_watt()
                         for m in MODEL_ORDER)
    paper = PAPER["fig20"]
    summary = {
        "avg_perf_per_watt_vs_jetson": (
            paper["avg_perf_per_watt_vs_jetson"], _avg(vs_jetson.values())),
        "rtx_vs_jetson_efficiency": (
            paper["rtx_vs_jetson_efficiency"], rtx_vs_jetson),
        "mobilenetv2_max_benefit": (
            True, max(vs_jetson, key=vs_jetson.get) == "mobilenetv2"),
    }
    rows = [(DISPLAY_NAMES[m], vs_jetson[m]) for m in MODEL_ORDER]
    return Experiment(
        id="fig20", title="Performance-per-Watt vs Jetson NX / RTX 2080 Ti",
        summary=summary,
        table=render_table(("model", "perf/W vs Jetson"), rows))


@experiment("fig21")
def fig21_a100() -> Experiment:
    """Fig. 21: A100 comparison at datacenter scale."""
    npu = scaled_npu_results()
    trt = gpu_results("a100", "tensorrt")
    cuda = gpu_results("a100", "cuda")
    s_trt = {m: trt[m].total_seconds / npu[m].total_seconds
             for m in MODEL_ORDER}
    s_cuda = {m: cuda[m].total_seconds / npu[m].total_seconds
              for m in MODEL_ORDER}
    paper = PAPER["fig21"]
    summary = {
        "avg_speedup_vs_a100_tensorrt": (
            paper["avg_speedup_vs_a100_tensorrt"], _avg(s_trt.values())),
        "avg_speedup_vs_a100_cuda": (
            paper["avg_speedup_vs_a100_cuda"], _avg(s_cuda.values())),
        "a100_wins_vgg16": (True, s_trt["vgg16"] < 1.0),
        "a100_wins_yolov3": (True, s_trt["yolov3"] < 1.0),
        "npu_wins_bert": (True, s_trt["bert"] > 1.0),
    }
    rows = [(DISPLAY_NAMES[m], s_trt[m], s_cuda[m]) for m in MODEL_ORDER]
    return Experiment(
        id="fig21", title="Iso-TOPs comparison to A100 (TensorRT and CUDA)",
        summary=summary,
        table=render_table(("model", "vs TensorRT", "vs CUDA"), rows))


@experiment("fig22")
def fig22_breakdown_a100() -> Experiment:
    """Fig. 22: A100 runtime breakdown."""
    data = analysis.figure22()
    rows = []
    for model, per_design in data.items():
        rows.append((DISPLAY_NAMES[model],
                     per_design["npu_tandem"]["nongemm"],
                     per_design["a100_cuda"]["nongemm"]))
    lm_share = _avg(data[m]["a100_cuda"]["nongemm"]
                    for m in ("bert", "gpt2", "mobilenetv2", "efficientnet"))
    cnn_share = _avg(data[m]["a100_cuda"]["nongemm"] for m in ("vgg16",))
    summary = {
        "nongemm_share_larger_for_newer_models_on_a100": (
            True, lm_share > cnn_share),
    }
    return Experiment(
        id="fig22", title="GEMM/non-GEMM runtime split: scaled NPU vs A100",
        summary=summary,
        table=render_table(("model", "NPU non-GEMM share",
                            "A100-CUDA non-GEMM share"), rows))


@experiment("fig23")
def fig23_nongemm_speedup() -> Experiment:
    """Fig. 23: non-GEMM-only speedups."""
    npu = scaled_npu_results()
    cuda = gpu_results("a100", "cuda")
    ratio = {m: cuda[m].nongemm_seconds / max(npu[m].nongemm_seconds, 1e-12)
             for m in MODEL_ORDER}
    paper = PAPER["fig23"]
    summary = {
        "avg_nongemm_speedup_vs_a100": (
            paper["avg_nongemm_speedup_vs_a100"], _avg(ratio.values())),
        "bert": (paper["bert"], ratio["bert"]),
        "bert_is_max": (True, max(ratio, key=ratio.get) == "bert"),
        "gpt2_below_bert (bandwidth bound)": (
            True, ratio["gpt2"] < ratio["bert"]),
    }
    rows = [(DISPLAY_NAMES[m], ratio[m]) for m in MODEL_ORDER]
    return Experiment(
        id="fig23", title="Non-GEMM-only speedup vs A100 CUDA cores",
        summary=summary,
        table=render_table(("model", "non-GEMM speedup"), rows))


@experiment("fig24")
def fig24_tandem_breakdown() -> Experiment:
    """Fig. 24: Tandem Processor cycle breakdown."""
    data = analysis.figure24()
    rows = []
    for model, fractions in data.items():
        top = sorted(fractions.items(), key=lambda kv: -kv[1])[:4]
        rows.append((DISPLAY_NAMES[model],
                     ", ".join(f"{op} {frac:.0%}" for op, frac in top)))
    summary = {
        "depthwise_dominates_mobilenetv2_nongemm": (
            True,
            max((k for k in data["mobilenetv2"] if k != "GEMM"),
                key=lambda k: data["mobilenetv2"][k]) == "DepthwiseConv"),
        "gelu_or_softmax_heavy_in_bert": (
            True, data["bert"].get("Gelu", 0) + data["bert"].get("Softmax", 0)
            > 0.05),
        "reducemean_visible_in_gpt2": (
            True, data["gpt2"].get("ReduceMean", 0) > 0.03),
        "gemm_significant_share_on_npu": (
            True, _avg(data[m].get("GEMM", 0) for m in MODEL_ORDER) > 0.3),
        # Breakdown fractions are read from the npu.* telemetry counters;
        # figure24 raises if they drift from the analytic per-op times.
        "counters_agree_with_analytic": (True, True),
    }
    return Experiment(
        id="fig24", title="NPU-Tandem runtime breakdown by layer type",
        summary=summary,
        table=render_table(("model", "largest components"), rows))


@experiment("fig25")
def fig25_energy_breakdown() -> Experiment:
    """Fig. 25: per-structure energy breakdown."""
    data = analysis.figure25()
    avg = {k: _avg(data[m][k] for m in MODEL_ORDER)
           for k in ("dram", "on_chip_sram", "alu", "loop_addr", "other")}
    paper = PAPER["fig25"]
    summary = {
        "dram_share": (paper["dram"], avg["dram"]),
        "on_chip_sram_share": (paper["on_chip_sram"], avg["on_chip_sram"]),
        "alu_share": (paper["alu"], avg["alu"]),
        "loop_addr_share": (paper["loop_addr"], avg["loop_addr"]),
        "loop_addr_is_largest_logic": (
            True, avg["loop_addr"] > max(avg["alu"], avg["on_chip_sram"])),
    }
    rows = [(DISPLAY_NAMES[m], *(data[m][k] for k in
                                 ("dram", "on_chip_sram", "alu", "loop_addr",
                                  "other"))) for m in MODEL_ORDER]
    return Experiment(
        id="fig25", title="Tandem Processor energy breakdown",
        summary=summary,
        table=render_table(("model", "dram", "sram", "alu", "loop+addr",
                            "other"), rows))


# ---------------------------------------------------------------------------
# Serving (beyond the paper: the datacenter SLO regime of Jouppi et al.)
# ---------------------------------------------------------------------------
@experiment("serving_sweep")
def serving_sweep() -> Experiment:
    """Latency-throughput knee over batch policy x fleet size x rate.

    No paper counterpart to compare numbers against; the "paper" column
    carries the qualitative expectations from the TPU paper's
    99th-percentile-SLO argument: p99 blows up superlinearly past
    saturation, larger fleets move the knee right, and dynamic batching
    beats single-request serving at high load.
    """
    from ..runtime import default_jobs
    from ..serving import (
        by_config,
        default_grid,
        knee_sharpness,
        max_throughput_at_slo,
        run_sweep,
        sweep_table,
    )
    reports = run_sweep(default_grid(), jobs=default_jobs())
    ladders = by_config(reports)
    capacity = {fleet: max_throughput_at_slo(ladders[("dynamic", fleet)])
                for fleet in (1, 2, 4)}
    knee = knee_sharpness(ladders[("dynamic", 1)])
    peak_rate_single = ladders[("single", 1)][-1]
    peak_rate_dynamic = ladders[("dynamic", 1)][-1]
    summary = {
        "p99_superlinear_past_saturation (knee sharpness > 1)": (
            True, knee > 1.0),
        "fleet2_sustains_more_than_fleet1_at_slo": (
            True, capacity[2] > capacity[1]),
        "fleet4_sustains_more_than_fleet2_at_slo": (
            True, capacity[4] > capacity[2]),
        "dynamic_batching_outserves_single_at_peak_load": (
            True,
            peak_rate_dynamic.throughput_rps
            > peak_rate_single.throughput_rps),
        "max_throughput_at_slo_fleet4_rps (ideal 4x of fleet1)": (
            4 * capacity[1], capacity[4]),
    }
    return Experiment(
        id="serving_sweep",
        title="Serving: latency-throughput knee across fleet sizes",
        summary=summary,
        table=sweep_table(reports),
        notes=f"knee sharpness (dynamic, 1 device): {knee:.2f}; "
              f"SLO-capacity req/s by fleet size: "
              f"{ {k: round(v, 1) for k, v in capacity.items()} }")


@experiment("llm_serving")
def llm_serving() -> Experiment:
    """Continuous vs one-shot batching for autoregressive decoding.

    No paper counterpart (the Tandem paper serves one-shot models); the
    "paper" column carries the continuous-batching literature's
    qualitative claims: iteration-level scheduling sustains strictly
    more goodput at equal SLO than padded one-shot batches, keeps TTFT
    flat where one-shot queues, and never pays padding decode steps.
    """
    from ..llm import (
        goodput_at_slo,
        llm_grid,
        llm_report,
        llm_table,
        run_llm_sweep,
    )
    from ..runtime import default_jobs
    from ..serving import LLMServiceCosts

    costs = LLMServiceCosts.resolve("gpt2_rms")
    points = llm_grid(costs=costs)
    reports = run_llm_sweep(points, jobs=default_jobs())
    payload = llm_report(points, reports)
    cont = payload["summary"]["continuous"]
    oneshot = payload["summary"]["oneshot"]
    rows = payload["rows"]
    min_rate = min(r["rate_rps"] for r in rows)
    ttft_gap = {r["scheduler"]: r["ttft_p95_ms"] for r in rows
                if r["rate_rps"] == min_rate}
    summary = {
        "continuous_beats_oneshot_goodput_at_slo": (
            True, payload["summary"]["continuous_beats_oneshot"]),
        "continuous_ttft_p95_no_worse_at_light_load": (
            True, ttft_gap["continuous"] <= ttft_gap["oneshot"]),
        "goodput_at_slo_rps (paper col = one-shot baseline)": (
            round(oneshot["goodput_at_slo_rps"], 2),
            round(cont["goodput_at_slo_rps"], 2)),
    }
    return Experiment(
        id="llm_serving",
        title="LLM serving: continuous vs one-shot batching at SLO",
        summary=summary,
        table=llm_table(payload),
        notes=f"gpt2_rms decode-step costs: prefill "
              f"{costs.prefill_token_s * 1e6:.2f} us/token, decode "
              f"{costs.decode_step_s * 1e6:.2f} us/step; KV budget "
              f"{costs.kv_budget_tokens} tokens; goodput bar: "
              f">={payload['slo_attainment_bar']:.0%} SLO attainment "
              f"(goodput_at_slo helper: "
              f"{goodput_at_slo(rows):.2f} req/s overall)")


@experiment("autotune")
def autotune_pipeline() -> Experiment:
    """Autotuned pass pipeline vs the fixed flow across the zoo.

    No paper counterpart; the "paper" column carries the qualitative
    expectations motivating the searcher: per-model pipeline choices
    beat one fixed flow in aggregate, every winner is verifier-clean,
    and the default flow is never beaten by being *worse* (the searcher
    keeps it as the fallback candidate).
    """
    from ..compiler import autotune_model
    from ..runtime import default_jobs

    npu = NPUTandem()
    jobs = default_jobs()
    rows = []
    ratios = []
    rejects = 0
    winners_clean = True
    for name in MODEL_ORDER:
        report = autotune_model(build_model(name), npu.config, jobs=jobs)
        ratio = report.best_cycles / report.baseline_cycles
        ratios.append(ratio)
        rejects += report.counters["verifier_rejects"]
        winners_clean &= any(
            cand["config"] == report.best_config and cand["status"] == "ok"
            for cand in report.candidates)
        rows.append((DISPLAY_NAMES.get(name, name), report.best_label,
                     f"{report.baseline_cycles:.0f}",
                     f"{report.best_cycles:.0f}", f"{ratio:.4f}"))
    geomean = 1.0
    for ratio in ratios:
        geomean *= ratio
    geomean **= 1.0 / len(ratios)
    summary = {
        "geomean_cycle_ratio_below_0.95": (True, geomean < 0.95),
        "no_model_regresses_vs_fixed_flow": (
            True, all(r <= 1.0 for r in ratios)),
        "every_winner_verifier_clean": (True, winners_clean),
        "geomean_cycle_ratio": (0.95, geomean),
    }
    return Experiment(
        id="autotune",
        title="Autotuned compiler pipeline vs the fixed flow",
        summary=summary,
        table=render_table(
            ("model", "winning pipeline", "fixed cycles", "tuned cycles",
             "ratio"),
            rows, title="per-model pipeline search (cycle model)"),
        notes=f"geomean cycle ratio {geomean:.4f}; verifier-rejected "
              f"candidates across the search: {rejects}")


@experiment("monitoring_slo")
def monitoring_slo() -> Experiment:
    """Streaming SLO monitoring: crash detection vs a fault-free control.

    No paper counterpart; the "paper" column carries the SRE-workbook
    expectations for multi-window multi-burn-rate alerting: a seeded
    device-crash plan must page within a bounded detection latency of
    the first crash and resolve after the outage ends, a fault-free run
    of the same fleet must fire zero alerts, and attaching the monitor
    must not change one byte of the serving report (observational
    telemetry).
    """
    from ..faults import FaultInjector, FaultPlan
    from ..faults.plan import CrashSpec
    from ..serving import (
        BatchPolicy,
        FleetSimulator,
        MonitorPoint,
        OpenLoopPoisson,
        ResiliencePolicy,
        ServiceCosts,
        run_monitor_point,
    )

    costs = ServiceCosts.resolve(["bert"])
    plan = FaultPlan(name="mon-crash-a",
                     crash=CrashSpec(p_per_device_s=0.01, outage_s=6.0))
    base = dict(costs=costs, models=("bert",), devices=6,
                rate_rps=120.0, duration_s=20.0)
    crashed = run_monitor_point(MonitorPoint(fault_plan=plan, **base))
    control = run_monitor_point(MonitorPoint(**base))

    injector = FaultInjector(plan, devices=6, duration_s=20.0)
    first_crash_s = injector.crashes[0][0]
    monitor = crashed["monitor"]
    pages = [e for e in monitor["alerts"]
             if e["rule"] == "page-fast-burn" and e["kind"] == "fire"]
    resolves = [e for e in monitor["alerts"] if e["kind"] == "resolve"]
    detection_s = (pages[0]["t_s"] - first_crash_s if pages
                   else float("inf"))
    # Bound: the miss surfaces one SLO deadline after the crash, then
    # must climb over the short *and* long page windows.
    from ..serving import DEFAULT_SLO_MULTIPLIER
    slo_s = DEFAULT_SLO_MULTIPLIER * costs.latency_s("bert")
    bound_s = slo_s + 2.0 + 0.5
    rule_names = {r["name"] for r in monitor["rules"]}
    summary = {
        "page_fires_on_seeded_crash": (True, bool(pages)),
        "detection_latency_within_bound_s": (
            round(bound_s, 2), round(detection_s, 2)),
        "all_alerts_resolve_after_recovery": (
            True, bool(resolves) and not monitor["active_alerts"]),
        "fault_free_run_fires_zero_alerts": (
            True, control["monitor"]["alerts"] == []),
        "monitoring_is_observational (serving report unchanged)": (
            True, crashed["serving"] == FleetSimulator(
                costs, devices=6, batch_policy=BatchPolicy(),
                routing="round_robin", fault_plan=plan,
                resilience=ResiliencePolicy.naive()).run(
                    OpenLoopPoisson(("bert",), 120.0, 20.0),
                    rate_rps=120.0).as_dict()),
        "burn_rate_rules_evaluated": (2, len(rule_names)),
    }
    lines = [f"first crash at {first_crash_s:.2f}s; page fired at "
             f"{pages[0]['t_s']:.2f}s" if pages else "page never fired"]
    for event in monitor["alerts"]:
        lines.append(f"[{event['t_s']:7.2f}s] {event['kind']:7s} "
                     f"{event['severity']:6s} {event['rule']}")
    return Experiment(
        id="monitoring_slo",
        title="Monitoring: burn-rate paging on crashes, quiet when healthy",
        summary=summary,
        table=render_table(
            ("t_s", "event", "severity", "rule", "burn_long", "burn_short"),
            [(f"{e['t_s']:.2f}", e["kind"], e["severity"], e["rule"],
              f"{e['burn_long']:.1f}x", f"{e['burn_short']:.1f}x")
             for e in monitor["alerts"]],
            title="alert log (seeded crash plan mon-crash-a)"),
        notes="; ".join(lines[:1]) + f"; control run: "
              f"{control['monitor']['slo']['bad']} bad events, "
              f"{len(control['monitor']['alerts'])} alert events")


@experiment("fleet_scale")
def fleet_scale() -> Experiment:
    """Datacenter scale: the interned-record core + cell autoscaling.

    No paper counterpart; the "paper" column carries the In-Datacenter
    TPU framing from PAPERS.md: what matters at fleet scale is
    tail-latency-bounded throughput per dollar under diurnal load, not
    peak throughput.  Asserted shapes: the scaled core is bit-identical
    to the legacy fleet at small scale with autoscaling off, the
    autoscaler reacts to a diurnal day (scale-outs on the crest,
    scale-ins in the trough), and the autoscaled fleet strictly beats a
    static peak-sized fleet on bounded-throughput per dollar while
    keeping p99 inside the SLO.
    """
    from ..serving import (
        AutoscaleConfig,
        DiurnalTrace,
        FleetSimulator,
        OpenLoopPoisson,
        ScaledFleetSimulator,
        ServiceCosts,
        tail_bounded_throughput,
    )

    costs = ServiceCosts.resolve(["bert", "resnet50"])
    models = ("bert", "resnet50")

    # 1. Bit-identity: same workload through both cores, byte-compared.
    legacy = FleetSimulator(costs, devices=4).run(
        OpenLoopPoisson(models, 60.0, 4.0), rate_rps=60.0)
    scaled = ScaledFleetSimulator(costs, devices=4).run(
        OpenLoopPoisson(models, 60.0, 4.0), rate_rps=60.0)
    identical = legacy.to_json() == scaled.to_json()

    # 2. One diurnal day, static peak fleet vs autoscaled fleet.
    def day():
        return DiurnalTrace(models, 2400.0, 8.0, trough_fraction=0.1)

    static_sim = ScaledFleetSimulator(costs, devices=64, cells=8,
                                      routing="round_robin")
    static = static_sim.run(day(), rate_rps=2400.0)
    auto_sim = ScaledFleetSimulator(
        costs, devices=64, cells=8, routing="round_robin",
        autoscale=AutoscaleConfig(interval_s=0.1, min_cells=2,
                                  cooldown_s=1.0, queue_high=1.0,
                                  queue_low=0.2))
    auto = auto_sim.run(day(), rate_rps=2400.0)
    static_pay, auto_pay = static_sim.payload, auto_sim.payload
    actions = [e["action"] for e in auto_pay["autoscale_events"]]
    per_dollar = auto_pay["slo"]["bounded_throughput_per_dollar"]
    static_per_dollar = static_pay["slo"]["bounded_throughput_per_dollar"]

    summary = {
        "scaled_core_bit_identical_to_legacy": (True, identical),
        "autoscaler_scales_out_on_crest": (True, "scale-out" in actions),
        "autoscaler_scales_in_on_trough": (True, "scale-in" in actions),
        "autoscaled_beats_static_per_dollar": (
            True, per_dollar > static_per_dollar),
        "autoscaled_p99_within_slo_ms": (
            round(min(auto.slo_ms.values()), 2), round(auto.p99_ms, 2)),
        "cost_savings_fraction": (
            ">0", round(auto_pay["cost"]["savings_fraction"], 3)),
    }
    rows = [
        ("static 64-dev", f"{static.throughput_rps:.0f}",
         f"{static.p99_ms:.1f}",
         f"{tail_bounded_throughput(static):.0f}",
         f"{static_pay['cost']['dollars']:.4f}",
         f"{static_per_dollar:.0f}"),
        ("autoscaled", f"{auto.throughput_rps:.0f}", f"{auto.p99_ms:.1f}",
         f"{tail_bounded_throughput(auto):.0f}",
         f"{auto_pay['cost']['dollars']:.4f}", f"{per_dollar:.0f}"),
    ]
    return Experiment(
        id="fleet_scale",
        title="Fleet scale: bounded throughput per dollar, diurnal day",
        summary=summary,
        table=render_table(
            ("fleet", "thr (req/s)", "p99 (ms)", "bounded thr",
             "cost ($)", "bounded/$"),
            rows, title="one diurnal day, 64 devices in 8 cells"),
        notes=f"{actions.count('scale-out')} scale-outs, "
              f"{actions.count('scale-in')} scale-ins, "
              f"{actions.count('park')} parks over the day; "
              f"autoscale-off run bit-identical to legacy fleet: "
              f"{identical}")


@experiment("fig26")
def fig26_area() -> Experiment:
    """Fig. 26: Tandem Processor area breakdown."""
    breakdown = analysis.tandem_area()
    fractions = breakdown.fractions()
    paper = PAPER["fig26"]
    summary = {
        "total_mm2": (paper["total_mm2"], breakdown.total_mm2),
        "alu_fraction": (paper["alu_fraction"], fractions["alu"]),
        "interim_buf_fraction": (paper["interim_buf_fraction"],
                                 fractions["interim_buf"]),
        "permute_fraction": (paper["permute_fraction"], fractions["permute"]),
    }
    return Experiment(id="fig26", title="Tandem Processor area breakdown",
                      summary=summary)
