"""Experiment harness: figure/table registry + paper-vs-measured reports."""

from .experiments import (
    EXPERIMENTS,
    Experiment,
    all_experiment_ids,
    run_experiment,
)
from .paper_data import PAPER
from .report import paper_vs_measured, render_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "PAPER",
    "all_experiment_ids",
    "paper_vs_measured",
    "render_table",
    "run_experiment",
]
