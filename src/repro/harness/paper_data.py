"""The paper's reported numbers, transcribed from the text and figures.

Used by EXPERIMENTS.md generation and by the benchmark harness to print
paper-vs-measured side by side. Only values the paper states explicitly
(abstract, Section 8 text, figure captions) are recorded; per-model bar
heights that are not quoted numerically are left as qualitative claims.
"""

#: Figure/Table id -> {metric: paper value}.
PAPER = {
    "table3": {
        "systolic_dims": (32, 32),
        "tandem_lanes": 32,
        "systolic_spad_kb": 384,
        "interim_buf_total_kb": 128,
        "accumulators_kb": 128,
        "frequency_ghz": 1.0,
    },
    "fig02": {
        "gemm_fraction_all_models": 0.15,
    },
    "fig03": {
        "efficientnet_nongemm_share_baseline2": 0.81,
        "efficientnet_nongemm_share_gpu": 0.73,
    },
    "fig05": {
        "memory_bound_ops": ("Add", "Mul", "Relu", "Clip", "MaxPool",
                             "ReduceMean", "Cast", "Transpose"),
        "compute_bound_ops": ("Softmax", "Gelu"),
    },
    "fig06": {
        "regfile_ldst_nongemm": 0.41,
        "regfile_ldst_e2e": 0.27,
        "address_calc_nongemm": 0.59,
        "address_calc_e2e": 0.40,
        "loop_logic_nongemm": 0.70,
        "loop_logic_e2e": 0.47,
    },
    "fig08": {
        "gemm_utilization_gain": 0.20,
        "tandem_utilization_gain": 0.13,
    },
    "fig14": {
        "avg_speedup_vs_baseline1": 3.5,
        "avg_speedup_vs_baseline2": 2.7,
        "mobilenetv2_speedup_vs_baseline1": 5.9,
        "mobilenetv2_speedup_vs_baseline2": 5.4,
        "bert_speedup_vs_baseline1": 5.4,
        "bert_speedup_vs_baseline2": 4.5,
    },
    "fig15": {
        "avg_energy_reduction_vs_baseline1": 39.2,
        "avg_energy_reduction_vs_baseline2": 20.6,
    },
    "fig16": {
        "avg_speedup_vs_gemmini": 47.8,
        "avg_speedup_vs_gemmini_multicore": 5.9,
        "multicore_gemmini_self_improvement": 8.0,
        "max_speedup_vs_multicore": ("mobilenetv2", 35.3),
        "min_speedup_vs_multicore": ("vgg16", 0.9),
    },
    "fig17": {
        "mobilenetv2_im2col_share": 0.90,
        "efficientnet_im2col_share": 0.90,
        "riscv_bottleneck_models": ("yolov3", "bert", "gpt2", "resnet50"),
    },
    "fig18": {
        "avg_speedup_vs_vpu": 2.6,
        "loop_specialization_factor": 2.1,
        "regfile_removal_factor": 1.4,
        "obuf_ownership_factor": 1.1,
        "special_function_factor": 0.8,
    },
    "fig19": {
        "avg_energy_reduction_vs_vpu": 1.4,
        "mobilenetv2": 2.0,
        "efficientnet": 1.8,
        "gpt2": 1.7,
        "vgg16": 1.1,
        "yolov3": 1.1,
    },
    "fig20": {
        "avg_perf_per_watt_vs_jetson": 4.8,
        "rtx_vs_jetson_efficiency": 0.8,  # "20 % lower on average"
    },
    "fig21": {
        "avg_speedup_vs_a100_tensorrt": 1.025,
        "avg_speedup_vs_a100_cuda": 4.0,
        "npu_wins": ("resnet50", "mobilenetv2", "efficientnet", "bert", "gpt2"),
        "a100_wins": ("vgg16", "yolov3"),
    },
    "fig23": {
        "avg_nongemm_speedup_vs_a100": 3.4,
        "bert": 8.0,
        "resnet50": 5.2,
        "mobilenetv2": 4.5,
    },
    "fig25": {
        "dram": 0.31,
        "on_chip_sram": 0.13,
        "alu": 0.12,
        "loop_addr": 0.40,
    },
    "fig26": {
        "total_mm2": 1.02,
        "alu_fraction": 0.566,
        "interim_buf_fraction": 0.292,
        "permute_fraction": 0.120,
    },
}
