"""Render every experiment: ``python -m repro.harness [ids...]``."""

from __future__ import annotations

import sys

from .experiments import all_experiment_ids, run_experiment


def main(argv) -> int:
    ids = argv or all_experiment_ids()
    for exp_id in ids:
        experiment = run_experiment(exp_id)
        print(experiment.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
