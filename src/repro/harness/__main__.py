"""Render every experiment: ``python -m repro.harness [ids...] [-j N]``.

Experiments are independent, so ``--jobs N`` fans them out across
worker processes; output stays in request order (byte-identical to a
serial run). Evaluations flow through the shared content-addressed
cache (``.repro_cache`` by default), so a warm invocation skips the
compile and sweep work entirely — ``--no-cache``, ``--cache-dir`` and
``--clear-cache`` control it.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..runtime import default_jobs, parallel_map, set_cache
from .experiments import all_experiment_ids, run_experiment


def _render(exp_id: str) -> str:
    return run_experiment(exp_id).render()


def _render_traced(exp_id: str):
    """Render one experiment under a fresh telemetry session.

    Runs in the worker process; the (picklable) snapshot travels back
    with the rendered text and the parent merges snapshots in request
    order, so serial and ``--jobs`` runs produce the same trace.
    """
    from ..telemetry import Telemetry, scoped_telemetry
    with scoped_telemetry(Telemetry(enabled=True,
                                    label=f"experiment:{exp_id}")) as tel:
        with tel.span(f"experiment:{exp_id}", cat="harness"):
            text = run_experiment(exp_id).render()
        return text, tel.snapshot()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate paper figures/tables (EXPERIMENTS.md content)")
    parser.add_argument("ids", nargs="*", metavar="ID",
                        help="experiment ids (default: all)")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the compile/result cache")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="on-disk cache location (default .repro_cache)")
    parser.add_argument("--clear-cache", action="store_true",
                        help="drop every cached entry before running")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="run with telemetry on and write a merged "
                             "Chrome trace-event file")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    # Cache policy travels through the environment so that spawned
    # workers inherit it regardless of start method.
    if args.no_cache:
        os.environ["REPRO_CACHE"] = "0"
        set_cache(None)
    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
        set_cache(None)
    if args.clear_cache:
        from ..runtime import get_cache
        get_cache().clear()
    ids = args.ids or all_experiment_ids()
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if args.trace_out:
        snapshots = []
        for text, snapshot in parallel_map(_render_traced, ids, jobs=jobs):
            print(text)
            print()
            snapshots.append(snapshot)
        from ..telemetry.export import chrome_trace, write_trace
        write_trace(args.trace_out,
                    chrome_trace(snapshots,
                                 extra_other_data={"experiments": list(ids)}))
        print(f"wrote {args.trace_out}")
    else:
        for text in parallel_map(_render, ids, jobs=jobs):
            print(text)
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
