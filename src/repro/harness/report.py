"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; floats formatted to three significant places."""
    def fmt(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.3f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(pairs: Dict[str, tuple], title: str = "") -> str:
    """Render {metric: (paper, measured)} side by side with the ratio."""
    rows = []
    for metric, (paper, measured) in pairs.items():
        ratio = ""
        if isinstance(paper, (int, float)) and isinstance(measured, (int, float)):
            if paper:
                ratio = measured / paper
        rows.append((metric, paper, measured, ratio))
    return render_table(("metric", "paper", "measured", "measured/paper"),
                        rows, title)
