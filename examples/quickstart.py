"""Quickstart: compile a small CNN and run it on the Tandem Processor.

Builds TinyNet, compiles it into execution blocks of Figure 12
instructions, runs the compiled programs on the detailed cycle-level
machine with real integer tensors, and checks the result against the
numpy reference executor — the same validation flow the paper uses for
its simulator and RTL (Section 7).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FunctionalRunner, ReferenceExecutor, compile_model
from repro.runtime import seeded_rng
from repro.models import build_tinynet


def main() -> None:
    rng = seeded_rng("example-quickstart")
    graph = build_tinynet()
    model = compile_model(graph)

    print(f"model: {graph.name} ({len(graph)} nodes)")
    print(f"blocks: {[(b.kind, b.tiles) for b in model.blocks]}")
    print(f"total Tandem instructions: {model.total_instructions()}\n")

    first = next(b for b in model.blocks if b.tile is not None)
    print(f"disassembly of {first.name} (first 20 instructions):")
    print("\n".join(first.tile.program.disassemble().splitlines()[:20]))

    # Bind inputs and parameters with small integers.
    bindings = {}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is None:
            hi = 4 if name.startswith("w_") else 20
            bindings[name] = rng.integers(-hi, hi, spec.shape)

    runner = FunctionalRunner(model)
    runner.bind(bindings)
    outputs = runner.run({"image": bindings["image"]})
    reference = ReferenceExecutor(graph).run(bindings)

    out_name = graph.graph_outputs[0]
    exact = np.array_equal(outputs[out_name], reference[out_name])
    machine = runner.total_machine_result()
    print(f"\noutput tensor {out_name}: {outputs[out_name].reshape(-1)[:10]}")
    print(f"bit-exact vs numpy reference: {exact}")
    print(f"Tandem cycles: {machine.cycles}, "
          f"instructions decoded: {machine.instructions_decoded}")
    print(f"energy breakdown: "
          f"{ {k: round(v, 3) for k, v in machine.energy.breakdown().items()} }")
    if not exact:
        raise SystemExit("mismatch against the reference executor")


if __name__ == "__main__":
    main()
