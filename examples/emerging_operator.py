"""Add an *emerging* operator end-to-end — the paper's core thesis.

The Tandem Processor needs no new hardware for a new operator: the
compiler lowers it to primitive INT32 instructions. This example adds
HardSwish (MobileNetV3, published after many NPUs taped out):

    hardswish(x) = x * clip(x + 3, 0, 6) / 6

Steps: (1) register the operator and its fixed-point recipe, (2) reuse
the generic unary template, (3) define the reference semantics, then
compile a model containing it and validate bit-exactness on the
cycle-level machine.

Run:  python examples/emerging_operator.py
"""

import numpy as np

from repro import FunctionalRunner, GraphBuilder, ReferenceExecutor, compile_model
from repro.compiler import TEMPLATES, run_recipe
from repro.compiler.integer_ops import FRAC_BITS, Step, UNARY_RECIPES
from repro.compiler.reference import ReferenceExecutor as _Ref
from repro.graph import OpClass, OpInfo, is_registered, ops
from repro.runtime import seeded_rng


def hardswish_recipe(frac_bits: int = FRAC_BITS):
    """x * clip(x + 3, 0, 6) / 6 in Qm.f — seven primitive ops."""
    one = 1 << frac_bits
    inv6 = int(round(one / 6))
    return [
        Step("add", "t", "x", 3 * one),
        Step("max", "lo", "t", 0),
        Step("min", "hi", "lo", 6 * one),
        Step("mul", "xg", "hi", "x"),
        Step("rshift", "xgs", "xg", frac_bits),
        Step("mul", "scaled", "xgs", inv6),
        Step("rshift", "out", "scaled", frac_bits),
    ]


def register_hardswish() -> None:
    if not is_registered("HardSwish"):
        ops.register(OpInfo("HardSwish", OpClass.ACTIVATION,
                            ops_per_element=7.0))
    # The compiler's generic unary template handles any recipe-backed op.
    UNARY_RECIPES["HardSwish"] = hardswish_recipe
    TEMPLATES["HardSwish"] = TEMPLATES["Relu"]
    # Reference semantics: execute the same recipe with numpy.
    _Ref._op_hardswish = lambda self, node, values: run_recipe(
        hardswish_recipe(self.frac_bits), values[node.inputs[0]])


def main() -> None:
    register_hardswish()

    b = GraphBuilder("hswish-net")
    x = b.input("x", (1, 8, 12, 12), dtype="int32")
    y = b.emit("HardSwish", [x], (1, 8, 12, 12), "int32")
    graph = b.finish([y])

    model = compile_model(graph)
    rng = seeded_rng("example-hardswish")
    data = rng.integers(-1024, 1024, (1, 8, 12, 12))

    runner = FunctionalRunner(model)
    outputs = runner.run({"x": data})
    reference = ReferenceExecutor(graph).run({"x": data})

    got = outputs[graph.graph_outputs[0]]
    want = reference[graph.graph_outputs[0]]
    machine = runner.total_machine_result()
    float_ref = data / 256 * np.clip(data / 256 + 3, 0, 6) / 6
    max_err = np.max(np.abs(got / 256 - float_ref))

    print("HardSwish lowered to", model.total_instructions(),
          "Tandem instructions")
    print("bit-exact vs integer reference:", np.array_equal(got, want))
    print(f"max abs error vs float hardswish: {max_err:.4f}")
    print(f"cycles: {machine.cycles}")
    if not np.array_equal(got, want):
        raise SystemExit("mismatch against the reference executor")


if __name__ == "__main__":
    main()
