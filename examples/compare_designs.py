"""Compare every Section 2.3 design class on one benchmark.

Reproduces the paper's headline story for a single model: how the
NPU-Tandem stacks up against an off-chip CPU fallback, dedicated units,
Gemmini-style RISC-V cores, and a TPU-like VPU.

Run:  python examples/compare_designs.py [model]
"""

import sys

from repro import NPUTandem
from repro.baselines import (
    CpuFallbackDesign,
    DedicatedUnitsDesign,
    GemminiDesign,
    TpuVpuDesign,
)
from repro.harness import render_table
from repro.models import available_models


def main(model: str = "bert") -> None:
    if model not in available_models():
        raise SystemExit(f"unknown model {model!r}; try {available_models()}")

    designs = [
        NPUTandem(),
        CpuFallbackDesign(),
        DedicatedUnitsDesign(),
        GemminiDesign(1),
        GemminiDesign(32),
        TpuVpuDesign(),
    ]
    results = [design.evaluate(model) for design in designs]
    npu = results[0]

    rows = []
    for result in results:
        rows.append((
            result.design,
            result.total_seconds * 1e3,
            result.energy_joules * 1e3,
            npu.speedup_over(result) if result is not npu else 1.0,
            result.energy_joules / npu.energy_joules,
        ))
    print(render_table(
        ("design", "latency (ms)", "energy (mJ)",
         "NPU-Tandem speedup", "energy vs NPU"),
        rows, title=f"End-to-end inference of {model} (batch 1)"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bert")
