"""Profile a language model on the NPU-Tandem.

Shows where GPT-2's time and energy go on the proposed design — the
Figure 24/25 view: which non-GEMM operators still matter once the
Tandem Processor accelerates them, and which hardware components burn
the energy.

Run:  python examples/language_model_profile.py [model]
"""

import sys

from repro import NPUTandem
from repro.harness import render_table


def main(model: str = "gpt2") -> None:
    npu = NPUTandem()
    result = npu.evaluate(model)

    print(f"{model}: {result.total_seconds * 1e3:.3f} ms end-to-end, "
          f"{result.energy_joules * 1e3:.2f} mJ "
          f"({result.average_power_watts:.2f} W average)\n")

    busy = result.gemm_seconds + sum(result.per_op_seconds.values())
    rows = [("GEMM (systolic array)", result.gemm_seconds * 1e3,
             result.gemm_seconds / busy)]
    for op, seconds in sorted(result.per_op_seconds.items(),
                              key=lambda kv: -kv[1]):
        rows.append((op, seconds * 1e3, seconds / busy))
    print(render_table(("layer type", "busy time (ms)", "share"), rows,
                       title="Runtime breakdown (Figure 24 view)"))

    total_j = sum(result.energy_breakdown.values())
    rows = [(component, joules * 1e3, joules / total_j)
            for component, joules in sorted(result.energy_breakdown.items(),
                                            key=lambda kv: -kv[1])
            if joules > 0]
    print()
    print(render_table(("component", "energy (mJ)", "share"), rows,
                       title="Energy breakdown (Figure 25 view)"))

    print(f"\nGEMM-unit utilization:   {result.gemm_utilization:.1%}")
    print(f"Tandem-unit utilization: {result.nongemm_utilization:.1%}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gpt2")
