"""npu/trace.py: the ASCII Gantt rendering and the overlap metric."""

from repro.npu import (
    NPUTandem,
    overlap_fraction,
    render_timeline,
    trace_block,
    trace_model,
)


def test_tinynet_trace_produces_events_for_both_units():
    events = trace_model("tinynet")
    assert events
    units = {e.unit for e in events}
    assert units == {"gemm", "tandem"}
    for event in events:
        assert event.end_cycle > event.start_cycle
        assert event.duration == event.end_cycle - event.start_cycle


def test_ascii_gantt_renders_for_tinynet():
    events = trace_model("tinynet")
    art = render_timeline(events, width=60)
    lines = art.splitlines()
    assert lines[0].startswith("cycles ")
    assert len(lines) == 3
    for label, line in zip(("gemm", "tandem"), lines[1:]):
        assert label in line
        # One fixed-width lane between the two '|' delimiters.
        assert line.count("|") == 2
        assert len(line.split("|")[1]) == 60
    assert "#" in art


def test_empty_timeline_renders_placeholder():
    assert render_timeline([]) == "(empty trace)"
    assert overlap_fraction([]) == 0.0


def test_overlap_fraction_in_unit_interval_for_tinynet():
    # TinyNet's blocks are single-tile, so the double-buffered
    # recurrence has nothing to overlap — but the metric must stay
    # within [0, 1] (here exactly 0).
    events = trace_model("tinynet")
    assert 0.0 <= overlap_fraction(events) <= 1.0


def test_multi_tile_block_overlaps_the_units():
    # With 4 tiles and an early Output BUF release, the GEMM unit works
    # on tile i+1 while the Tandem Processor consumes tile i.
    events = trace_block("b", tiles=4, g=10, t=10, release=2)
    overlap = overlap_fraction(events)
    assert 0.0 < overlap <= 1.0


def test_gemm_only_block_has_zero_overlap():
    events = trace_block("b", tiles=4, g=10, t=0, release=0)
    assert {e.unit for e in events} == {"gemm"}
    assert overlap_fraction(events) == 0.0


def test_trace_respects_max_tiles_cap():
    events = trace_block("b", tiles=100, g=5, t=5, release=2, max_tiles=8)
    assert max(e.tile for e in events) == 7


def test_trace_accepts_compiled_model():
    npu = NPUTandem()
    model = npu.compile("tinynet")
    assert trace_model(model, npu=npu) == trace_model("tinynet", npu=npu)
