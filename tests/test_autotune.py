"""Autotuned pass pipeline: plumbing, search, caching, equivalence."""

import numpy as np
import pytest

from repro.compiler import (
    Block,
    CompileError,
    PipelineConfig,
    ReferenceExecutor,
    all_configs,
    autotune_model,
    compile_model,
    dump_model,
    explain_compile,
    form_blocks,
    knob_space_size,
    split_at_depth,
)
from repro.compiler.compiler import _compile_key
from repro.compiler.tiling import search_tiles
from repro.models import build_model, build_tinynet
from repro.npu import FunctionalRunner, NPUTandem
from repro.runtime import EvalCache, get_cache, set_cache
from repro.simulator.params import SimParams


# ---------------------------------------------------------------------------
# PipelineConfig plumbing
# ---------------------------------------------------------------------------
def test_pipeline_config_roundtrip_and_defaults():
    config = PipelineConfig(fusion_depth=2, tile_search="exact",
                            fission=True)
    assert PipelineConfig.from_dict(config.as_dict()) == config
    assert not config.is_default
    assert PipelineConfig().is_default
    assert "depth=2" in config.label() and "fission" in config.label()
    assert len(config.describe()) == 4


def test_pipeline_config_rejects_bad_knobs():
    with pytest.raises(ValueError, match="tile_search"):
        PipelineConfig(tile_search="fibonacci")
    with pytest.raises(ValueError, match="fusion_depth"):
        PipelineConfig(fusion_depth=0)


def test_knob_space_enumeration():
    configs = all_configs()
    assert len(configs) == knob_space_size()
    assert len(set(configs)) == len(configs)
    assert configs[0] == PipelineConfig()


def test_split_at_depth_preserves_ops_in_order():
    blocks = form_blocks(build_model("tinynet"))
    fused = next(b for b in blocks if b.gemm is not None and len(b.ops) > 1)
    parts = split_at_depth(fused, 1)
    assert parts[0].gemm is fused.gemm
    assert all(p.gemm is None for p in parts[1:])
    assert all(len(p.ops) == 1 for p in parts)
    rejoined = [op for part in parts for op in part.ops]
    assert rejoined == fused.ops
    assert split_at_depth(fused, len(fused.ops)) == [fused]
    with pytest.raises(ValueError, match="depth"):
        split_at_depth(fused, 0)


# ---------------------------------------------------------------------------
# Tile search: memoization + exact refinement
# ---------------------------------------------------------------------------
def _fake_search(min_feasible, strategy):
    """Drive search_tiles with a synthetic feasibility threshold."""
    calls = []

    def try_compile(tiles):
        calls.append(tiles)
        if tiles < min_feasible:
            raise CompileError(f"{tiles} tiles do not fit")
        return f"compiled@{tiles}"

    block = Block()  # no GEMM -> initial tile count 1
    tiles, compiled = search_tiles(block, None, SimParams().tandem,
                                   try_compile, strategy=strategy)
    return tiles, compiled, calls


def test_search_tiles_never_recompiles_a_count():
    # Satellite fix: one search must never re-evaluate a tile count it
    # has already scored, in either strategy.
    for strategy in ("pow2", "exact"):
        _, _, calls = _fake_search(13, strategy)
        assert len(calls) == len(set(calls)), (strategy, calls)


def test_search_tiles_exact_finds_minimum():
    tiles, compiled, _ = _fake_search(13, "exact")
    assert tiles == 13 and compiled == "compiled@13"
    pow2_tiles, _, _ = _fake_search(13, "pow2")
    assert pow2_tiles == 16


def test_search_tiles_exact_matches_pow2_on_power_of_two():
    assert _fake_search(16, "exact")[0] == 16
    assert _fake_search(1, "exact")[0] == 1


def test_search_tiles_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="strategy"):
        _fake_search(4, "newton")


def test_search_tiles_imm_buf_errors_propagate():
    def try_compile(tiles):
        raise CompileError("IMM BUF pressure: too many constants")

    with pytest.raises(CompileError, match="IMM BUF"):
        search_tiles(Block(), None, SimParams().tandem, try_compile)


# ---------------------------------------------------------------------------
# compile_model(pipeline=...)
# ---------------------------------------------------------------------------
def test_default_pipeline_is_bit_identical():
    graph = build_model("tinynet")
    base = compile_model(graph, verify=False)
    explicit = compile_model(graph, verify=False, pipeline=PipelineConfig())
    assert dump_model(base) == dump_model(explicit)


def test_default_pipeline_shares_the_compile_key():
    graph = build_model("tinynet")
    sim = SimParams()
    npu = NPUTandem()
    bare = _compile_key(graph, sim, npu.config.gemm, 14, False)
    defaulted = _compile_key(graph, sim, npu.config.gemm, 14, False,
                             PipelineConfig())
    tuned = _compile_key(graph, sim, npu.config.gemm, 14, False,
                         PipelineConfig(tile_search="exact"))
    assert bare == defaulted
    assert tuned != bare


def test_tuned_pipeline_is_functionally_equivalent(rng):
    graph = build_tinynet()
    config = PipelineConfig(fusion_depth=1, tile_search="exact",
                            fission=True, interchange=True)
    model = compile_model(graph, pipeline=config)  # verify=on by default
    bindings = {}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is None:
            hi = 4 if name.startswith("w_") else 20
            bindings[name] = rng.integers(-hi, hi, spec.shape)
    runner = FunctionalRunner(model)
    runner.bind(bindings)
    outputs = runner.run({k: v for k, v in bindings.items()
                          if k in graph.graph_inputs})
    reference = ReferenceExecutor(graph).run(bindings)
    for name in graph.graph_outputs:
        np.testing.assert_array_equal(outputs[name], reference[name])


def test_explain_compile_narrates_the_pipeline():
    model, lines = explain_compile(build_model("tinynet"),
                                   pipeline=PipelineConfig(fusion_depth=1))
    assert lines[0].startswith("pipeline: depth=1")
    assert any(line.strip().startswith("fuse_blocks:") for line in lines)
    assert len(model.blocks) >= 3


# ---------------------------------------------------------------------------
# The searcher
# ---------------------------------------------------------------------------
def test_autotune_respects_budget_and_never_loses_to_default():
    report = autotune_model(build_model("tinynet"), budget=5)
    assert report.counters["candidates"] <= 5
    assert report.strategy == "greedy"
    assert report.best_cycles <= report.baseline_cycles
    assert report.improvement >= 0.0


def test_autotune_exhaustive_when_budget_covers_space():
    report = autotune_model(build_model("tinynet"),
                            budget=knob_space_size())
    assert report.strategy == "exhaustive"
    assert report.counters["candidates"] == knob_space_size()
    labels = [c["label"] for c in report.candidates]
    assert len(set(labels)) == len(labels)


def test_autotune_is_deterministic_without_a_cache():
    prev = get_cache()
    set_cache(EvalCache(enabled=False))
    try:
        graph = build_model("tinynet")
        first = autotune_model(graph, budget=6).as_dict()
        second = autotune_model(graph, budget=6).as_dict()
    finally:
        set_cache(prev)
    assert first == second
    assert first["schema"] == "repro-autotune-report-v1"


def test_autotune_report_is_cached(tmp_path):
    prev = get_cache()
    set_cache(EvalCache(directory=tmp_path))
    try:
        graph = build_model("tinynet")
        cold = autotune_model(graph, budget=6)
        warm = autotune_model(graph, budget=6)
    finally:
        set_cache(prev)
    assert not cold.cached and warm.cached
    assert cold.as_dict() == warm.as_dict()


def test_autotune_winner_compiles_verifier_clean():
    from repro.analysis.verifier import verify_model
    graph = build_model("tinynet")
    report = autotune_model(graph, budget=8)
    model = compile_model(graph, pipeline=report.best_pipeline(),
                          verify=False)
    assert verify_model(model).errors == 0


def test_npu_autotune_opt_in(monkeypatch):
    assert not NPUTandem()._autotune_active()
    assert NPUTandem(autotune=True)._autotune_active()
    assert not NPUTandem(autotune=False)._autotune_active()
    monkeypatch.setenv("REPRO_AUTOTUNE", "1")
    assert NPUTandem()._autotune_active()
    assert not NPUTandem(autotune=False)._autotune_active()


def test_npu_autotuned_compile_never_slower(monkeypatch):
    graph = build_model("mobilenetv2")
    npu = NPUTandem()
    fixed = npu.evaluate(npu.compile(graph))
    tuned_npu = NPUTandem(autotune=True)
    tuned = tuned_npu.evaluate(tuned_npu.compile(graph))
    assert tuned.total_seconds <= fixed.total_seconds
