"""Streaming monitoring: samplers, burn-rate alerting, monitor reports."""

import json
import math
import random

import pytest

from repro.runtime import parallel_map
from repro.serving import (
    BatchPolicy,
    FleetSimulator,
    LLMMonitor,
    LLMServiceCosts,
    MonitorConfig,
    MonitorPoint,
    OpenLoopPoisson,
    ResiliencePolicy,
    ServiceCosts,
    llm_poisson_requests,
    make_llm_batcher,
    monitor_table,
    monitoring_enabled,
    run_monitor_point,
    validate_monitor_report,
)
from repro.serving.metrics import ServingReport
from repro.serving.scheduler import ModelCost
from repro.telemetry import (
    AlertEngine,
    BurnRateRule,
    GaugeSampler,
    RateSampler,
    SLOObjective,
    SlidingWindowHistogram,
    StreamingHistogram,
    budget_burn,
    default_rules,
    nearest_rank,
    percentile,
)
from repro.telemetry.dashboard import render_dashboard, sparkline


def toy_costs(latency_s=0.010, compile_s=0.005, models=("m",)):
    return ServiceCosts(
        costs={m: ModelCost(latency_s, compile_s) for m in models},
        amortized_fraction=0.5)


# ---------------------------------------------------------------------------
# The shared percentile implementation (satellites 1 + 2)
# ---------------------------------------------------------------------------
def test_percentile_edge_semantics_pinned():
    # Empty input is 0.0 by (documented) contract -- callers that must
    # distinguish "no samples" check the count themselves.
    assert percentile([], 99) == 0.0
    # A single element is every percentile of itself.
    assert percentile([5.0], 0) == 5.0
    assert percentile([5.0], 50) == 5.0
    assert percentile([5.0], 99) == 5.0
    # Nearest rank, never interpolation: results are observed values.
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 50) == 2.0
    assert percentile(values, 75) == 3.0
    assert percentile(values, 76) == 4.0
    assert percentile(values, 100) == 4.0


def test_nearest_rank_rejects_empty():
    with pytest.raises(ValueError):
        nearest_rank(0, 50)


def test_serving_metrics_reuses_telemetry_percentile():
    # ONE implementation of the rank rule: the serving metrics module
    # re-exports the telemetry one, not a private copy.
    from repro.serving import metrics
    from repro.telemetry import timeseries
    assert metrics.percentile is timeseries.percentile


def test_empty_serving_report_renders_na_not_zero():
    report = ServingReport(
        models=("m",), devices=1, batch_policy="dynamic", max_batch=8,
        max_wait_ms=2.0, routing="round_robin", rate_rps=10.0,
        duration_s=1.0, offered=4, completed=0, rejected=4)
    table = report.table()
    assert "n/a" in table
    # Latency rows must not masquerade as a measured zero-millisecond p99.
    for line in table.splitlines():
        if "latency" in line:
            assert "0.00" not in line


# ---------------------------------------------------------------------------
# Streaming histogram vs the exact estimator (satellite 1)
# ---------------------------------------------------------------------------
def test_streaming_histogram_tracks_exact_percentile_within_bound():
    rng = random.Random(4)
    hist = StreamingHistogram()
    samples = []
    for _ in range(5000):
        value = math.exp(rng.gauss(2.5, 1.2))  # lognormal latencies, ms
        samples.append(value)
        hist.observe(value)
    samples.sort()
    bound = hist.max_relative_error
    assert 0.02 < bound < 0.03  # sqrt(1.05) - 1
    for q in (10, 50, 90, 95, 99, 99.9):
        exact = percentile(samples, q)
        estimate = hist.percentile(q)
        assert abs(estimate - exact) / exact <= bound + 1e-12, (
            f"p{q}: estimate {estimate} vs exact {exact}")


def test_streaming_histogram_merge_equals_union():
    rng = random.Random(5)
    merged, left, right = (StreamingHistogram() for _ in range(3))
    for index in range(2000):
        value = math.exp(rng.gauss(1.0, 2.0))
        merged.observe(value)
        (left if index % 2 else right).observe(value)
    left.merge(right)
    assert left.counts == merged.counts
    assert left.count == merged.count
    for q in (50, 99):
        assert left.percentile(q) == merged.percentile(q)


def test_streaming_histogram_clamps_and_empty():
    hist = StreamingHistogram(lo=1.0, hi=100.0)
    assert hist.percentile(50) is None
    hist.observe(1e-12)   # underflow -> reported as lo
    hist.observe(1e12)    # overflow -> reported as hi
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 100.0
    with pytest.raises(ValueError):
        hist.merge(StreamingHistogram(lo=2.0, hi=100.0))


def test_sliding_window_forgets_old_intervals():
    window = SlidingWindowHistogram(window_intervals=3)
    window.observe(1000.0)
    window.roll()
    window.roll()
    assert window.percentile(99) == pytest.approx(1000.0, rel=0.05)
    window.roll()  # the 1000ms interval falls out of the 3-interval window
    assert window.percentile(99) is None
    window.observe(10.0)
    qs = (50, 95, 99)
    assert window.percentiles(qs) == [window.percentile(q) for q in qs]


def test_gauge_and_rate_sampler_semantics():
    gauge = GaugeSampler()
    gauge.set(7)
    gauge.add(-2)
    assert gauge.sample(0.1) == 5.0
    assert gauge.sample(0.1) == 5.0   # levels persist across intervals
    rate = RateSampler()
    rate.bump()
    rate.bump(4)
    assert rate.sample(0.1) == pytest.approx(50.0)
    assert rate.sample(0.1) == 0.0    # flows reset every interval


# ---------------------------------------------------------------------------
# Hand-computed burn-rate scenarios (satellite 3)
# ---------------------------------------------------------------------------
def _engine(rules, target=0.9, interval_s=0.1):
    return AlertEngine(SLOObjective(target=target), tuple(rules), interval_s)


def test_fast_burn_fires_when_both_windows_exceed_factor():
    # budget = 0.1; factor 2 => fire needs error rate >= 0.2 in BOTH the
    # 3-interval long window and the 1-interval short window.
    rule = BurnRateRule(name="r", severity="page", factor=2.0,
                        long_window_s=0.3, short_window_s=0.1,
                        hysteresis=0.9, resolve_intervals=2)
    engine = _engine([rule])
    assert engine.observe(9, 1, 0.1) == []      # rate 0.1, burn 1.0
    # Short window burns 5.0 but the long window holds (9+5, 1+5):
    # rate 6/20 = 0.3 -> burn 3.0 >= 2, so this interval fires.
    events = engine.observe(5, 5, 0.2)
    assert [(e.kind, e.rule) for e in events] == [("fire", "r")]
    assert events[0].burn_short == pytest.approx(5.0)
    assert events[0].burn_long == pytest.approx(3.0)
    assert engine.firing_rules() == ["r"]


def test_short_window_guard_ignores_stale_long_burn():
    # After an incident ends, the long window still carries the bad
    # events but the short window has recovered -- no (re)fire.
    rule = BurnRateRule(name="r", severity="page", factor=2.0,
                        long_window_s=0.3, short_window_s=0.1,
                        hysteresis=0.9, resolve_intervals=2)
    engine = _engine([rule])
    engine.observe(0, 10, 0.1)                  # burn 10 both -> fires
    assert engine.firing_rules() == ["r"]
    engine2 = _engine([rule])
    assert engine2.observe(10, 0, 0.1) == []
    assert engine2.observe(0, 10, 0.2) != []    # incident interval fires
    # A fresh engine seeing the incident only in its long window:
    engine3 = _engine([rule])
    engine3.observe(0, 10, 0.1)
    engine3._states[0].firing = False           # pretend it never fired
    assert engine3.observe(10, 0, 0.2) == []    # short window clean


def test_hysteresis_prevents_flapping():
    # clear threshold = factor * hysteresis = 2 * 0.9 = 1.8 => error
    # rate 0.19 (burn 1.9) is below fire but above clear: no resolve.
    rule = BurnRateRule(name="r", severity="page", factor=2.0,
                        long_window_s=0.1, short_window_s=0.1,
                        hysteresis=0.9, resolve_intervals=2)
    engine = _engine([rule])
    engine.observe(0, 100, 0.1)                 # fire
    for step in range(8):                       # straddle the threshold
        assert engine.observe(81, 19, 0.2 + step * 0.1) == []
    assert engine.firing_rules() == ["r"]       # never flapped
    # Two fully-quiet intervals resolve it (resolve_intervals=2).
    assert engine.observe(100, 0, 1.0) == []
    events = engine.observe(100, 0, 1.1)
    assert [(e.kind, e.rule) for e in events] == [("resolve", "r")]
    assert engine.firing_rules() == []


def test_no_data_windows_burn_zero_and_help_resolve():
    rule = BurnRateRule(name="r", severity="page", factor=2.0,
                        long_window_s=0.1, short_window_s=0.1,
                        hysteresis=0.9, resolve_intervals=2)
    engine = _engine([rule])
    assert engine.observe(0, 0, 0.1) == []      # no traffic != violation
    assert budget_burn(0, 0, engine.objective) == 0.0
    engine.observe(0, 10, 0.2)                  # fire
    engine.observe(0, 0, 0.3)                   # quiet streak 1
    events = engine.observe(0, 0, 0.4)          # quiet streak 2 -> resolve
    assert [e.kind for e in events] == ["resolve"]


def test_default_rules_page_vs_ticket_severities():
    # Sustained error rate of 8x budget trips the ticket (factor 6) but
    # never the page (factor 14.4).
    engine = AlertEngine(SLOObjective(target=0.999), default_rules(), 0.1)
    kinds = []
    for step in range(80):
        for event in engine.observe(992, 8, (step + 1) * 0.1):
            kinds.append((event.kind, event.severity))
    assert ("fire", "ticket") in kinds
    assert all(severity != "page" for _, severity in kinds)
    counts = engine.counts()
    assert counts.get("ticket_fire") == 1
    assert "page_fire" not in counts


def test_alert_engine_rejects_bad_config():
    rule = BurnRateRule(name="r", severity="page", factor=2.0,
                        long_window_s=0.3, short_window_s=0.1)
    with pytest.raises(ValueError):
        AlertEngine(SLOObjective(), (rule, rule), 0.1)  # duplicate names
    with pytest.raises(ValueError):
        AlertEngine(SLOObjective(), (rule,), 0.0)
    with pytest.raises(ValueError):
        SLOObjective(target=1.0)
    with pytest.raises(ValueError):
        BurnRateRule(name="r", severity="page", factor=2.0,
                     long_window_s=0.1, short_window_s=0.3)


# ---------------------------------------------------------------------------
# The monitored fleet
# ---------------------------------------------------------------------------
def _small_point(**overrides):
    base = dict(costs=ServiceCosts.resolve(["bert"]), models=("bert",),
                devices=4, rate_rps=80.0, duration_s=5.0)
    base.update(overrides)
    return MonitorPoint(**base)


def test_monitored_run_produces_valid_report():
    out = run_monitor_point(_small_point())
    payload = out["monitor"]
    assert validate_monitor_report(payload) == []
    assert payload["kind"] == "fleet"
    assert payload["intervals"] >= 50
    for name in ("queue.depth", "rate.arrivals", "latency.p99",
                 "util.mean", "util.d0", "burn.page-fast-burn.long"):
        assert len(payload["series"][name]["samples"]) == payload["intervals"]
    # A healthy fleet: every request settles, all of them good.
    slo = payload["slo"]
    assert slo["total"] == out["serving"]["offered"]
    assert slo["bad"] == 0
    assert payload["alerts"] == []
    assert "monitor" in monitor_table(payload)


def test_monitoring_is_observational():
    costs = ServiceCosts.resolve(["bert"])
    def run(monitor_config):
        sim = FleetSimulator(costs, devices=4, batch_policy=BatchPolicy(),
                             routing="round_robin",
                             resilience=ResiliencePolicy.naive(),
                             monitor_config=monitor_config)
        return sim.run(OpenLoopPoisson(("bert",), 80.0, 5.0),
                       rate_rps=80.0)
    plain = run(None)
    monitored = run(MonitorConfig())
    assert plain.as_dict() == monitored.as_dict()
    assert plain.table() == monitored.table()


def test_deterministic_crash_feeds_streaming_slo_misses():
    from repro.faults import FaultPlan
    from repro.faults.plan import CrashSpec
    # Pin the crash: device 0 dies at t=1.0s for 2s on a 2-device naive
    # round-robin fleet, so half the traffic misses its deadline.
    plan = FaultPlan(name="pinned", crash=CrashSpec(at=((0, 1.0),),
                                                    outage_s=2.0))
    out = run_monitor_point(_small_point(devices=2, fault_plan=plan))
    payload = out["monitor"]
    assert validate_monitor_report(payload) == []
    misses = payload["series"]["rate.slo_misses"]["samples"]
    first_miss_s = next(
        (index + 1) * payload["interval_s"]
        for index, sample in enumerate(misses) if sample)
    # The miss signal streams in while the device is still down --
    # well before the outage ends at t=3.0.
    assert 1.0 < first_miss_s < 3.0
    assert any(e["kind"] == "fire" and e["severity"] == "page"
               for e in payload["alerts"])
    assert payload["active_alerts"] == []  # resolved by the drain
    down = payload["series"]["devices.down"]["samples"]
    assert max(down) == 1.0


def test_serial_and_jobs_monitor_streams_byte_identical():
    points = [_small_point(stream=stream) for stream in (0, 1, 2)]
    serial = parallel_map(run_monitor_point, points, jobs=1)
    forked = parallel_map(run_monitor_point, points, jobs=2)
    assert (json.dumps(serial, sort_keys=True)
            == json.dumps(forked, sort_keys=True))


def test_monitor_counter_events_are_a_valid_trace():
    from repro.telemetry.export import (
        MONITOR_PID,
        chrome_trace,
        monitor_counter_events,
        validate_trace,
    )
    payload = run_monitor_point(_small_point())["monitor"]
    events = monitor_counter_events(payload)
    assert events and all(e["pid"] == MONITOR_PID for e in events)
    assert any(e["ph"] == "C" for e in events)
    validate_trace(chrome_trace([], device_events=events))


# ---------------------------------------------------------------------------
# The monitored LLM engine
# ---------------------------------------------------------------------------
def test_llm_monitor_reports_and_stays_quiet_at_light_load():
    costs = LLMServiceCosts.resolve("gpt2_rms")
    monitor = LLMMonitor(MonitorConfig(interval_s=0.05))
    requests = llm_poisson_requests(4.0, 4.0, (8, 32), (8, 32), 0)
    batcher = make_llm_batcher("continuous", costs, monitor=monitor)
    report = batcher.run(requests, rate_rps=4.0, duration_s=4.0)
    payload = monitor.payload(context={"config": "gpt2_rms"})
    assert validate_monitor_report(payload) == []
    assert payload["kind"] == "llm"
    assert payload["slo"]["total"] == len(requests)
    assert payload["slo"]["bad"] == 0
    assert payload["alerts"] == []
    tokens = [s for s in payload["series"]["rate.tokens"]["samples"] if s]
    assert sum(tokens) > 0
    assert report.completed == len(requests)


def test_llm_monitor_is_observational():
    costs = LLMServiceCosts.resolve("gpt2_rms")
    requests = llm_poisson_requests(4.0, 4.0, (8, 32), (8, 32), 0)
    plain = make_llm_batcher("continuous", costs).run(
        requests, rate_rps=4.0, duration_s=4.0)
    monitored = make_llm_batcher(
        "continuous", costs,
        monitor=LLMMonitor(MonitorConfig())).run(
            requests, rate_rps=4.0, duration_s=4.0)
    assert plain.as_dict() == monitored.as_dict()


# ---------------------------------------------------------------------------
# Report validation, dashboard, env plumbing
# ---------------------------------------------------------------------------
def test_validator_flags_corrupted_reports():
    payload = run_monitor_point(_small_point())["monitor"]
    assert validate_monitor_report(payload) == []

    bad = json.loads(json.dumps(payload))
    bad["schema"] = "bogus"
    assert any("schema" in p for p in validate_monitor_report(bad))

    bad = json.loads(json.dumps(payload))
    bad["series"]["queue.depth"]["samples"].pop()
    assert any("queue.depth" in p for p in validate_monitor_report(bad))

    bad = json.loads(json.dumps(payload))
    bad["alerts"] = [{"kind": "resolve", "rule": "page-fast-burn",
                      "severity": "page", "t_s": 1.0,
                      "burn_long": 0.0, "burn_short": 0.0}]
    assert any("resolved without firing" in p
               for p in validate_monitor_report(bad))

    bad = json.loads(json.dumps(payload))
    bad["active_alerts"] = ["page-fast-burn"]
    assert any("active_alerts" in p for p in validate_monitor_report(bad))

    bad = json.loads(json.dumps(payload))
    bad["slo"]["total"] += 1
    assert any("good + bad" in p for p in validate_monitor_report(bad))


def test_dashboard_renders_with_and_without_color():
    payload = run_monitor_point(_small_point())["monitor"]
    plain = render_dashboard(payload, color=False)
    assert "\x1b[" not in plain
    assert "latency.p99" in plain and "no active alerts" in plain
    colored = render_dashboard(payload, color=True)
    assert "\x1b[" in colored


def test_sparkline_gaps_and_scale():
    line = sparkline([0.0, None, 8.0], width=3)
    assert len(line) == 3
    assert line[1] == "·"          # None renders as a gap
    assert line[0] != line[2]           # scale spans min..max
    assert sparkline([], width=5) == "·" * 5


def test_monitoring_enabled_env_logic(monkeypatch):
    monkeypatch.delenv("REPRO_MONITOR", raising=False)
    assert monitoring_enabled() is False
    assert monitoring_enabled(True) is True
    monkeypatch.setenv("REPRO_MONITOR", "1")
    assert monitoring_enabled() is True
    monkeypatch.setenv("REPRO_MONITOR", "0")
    assert monitoring_enabled() is False
    assert monitoring_enabled(True) is False   # kill switch wins


def test_monitor_config_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_MONITOR_INTERVAL", "0.25")
    monkeypatch.setenv("REPRO_MONITOR_WINDOW", "4")
    monkeypatch.setenv("REPRO_MONITOR_SLO_TARGET", "0.99")
    config = MonitorConfig.from_env()
    assert config.interval_s == 0.25
    assert config.window_intervals == 4
    assert config.objective.target == 0.99
    assert MonitorConfig.from_env(interval_s=0.5).interval_s == 0.5
    with pytest.raises(ValueError):
        MonitorConfig(interval_s=0.0)
    with pytest.raises(ValueError):
        MonitorConfig(window_intervals=0)
