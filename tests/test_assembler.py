"""Textual assembler: parses its own disassembly and hand-written text."""

import pytest

from repro.compiler import compile_model
from repro.isa import (
    AluFunc,
    AssemblyError,
    Namespace,
    Opcode,
    assemble,
    assembly_roundtrip,
    parse_line,
)
from repro.models import build_tinynet


def test_parse_compute_line():
    inst = parse_line("ALU.ADD IBUF1[it0], IBUF1[it1], IMM[it2]")
    assert inst.opcode == Opcode.ALU
    assert inst.func == int(AluFunc.ADD)
    assert inst.dst.ns == Namespace.IBUF1
    assert inst.src2.ns == Namespace.IMM
    assert inst.src2.iter_idx == 2


def test_parse_config_line():
    inst = parse_line("ITERATOR_CONFIG.BASE_ADDR f3=0 f5=7 imm=-42")
    assert inst.opcode == Opcode.ITERATOR_CONFIG
    assert inst.field5 == 7
    assert inst.imm == -42


def test_parse_skips_blanks_and_comments():
    assert parse_line("") is None
    assert parse_line("   # just a comment") is None


def test_parse_strips_disassembler_prefix():
    inst = parse_line("   12: 30020001  ALU.ADD IBUF1[it2], IBUF1[it0], IBUF1[it1]")
    assert inst.opcode == Opcode.ALU


def test_unknown_opcode_rejected():
    with pytest.raises(AssemblyError, match="unknown opcode"):
        parse_line("FOO.BAR f3=0", line_no=3)


def test_unknown_func_rejected():
    with pytest.raises(AssemblyError, match="unknown func"):
        parse_line("ALU.FROBNICATE IBUF1[it0], IBUF1[it0]")


def test_bad_operand_rejected():
    with pytest.raises(AssemblyError, match="operand"):
        parse_line("ALU.ADD IBUF1[0], IBUF1[it1], IBUF1[it2]")


def test_bad_field_rejected():
    with pytest.raises(AssemblyError, match="bad field"):
        parse_line("LOOP.SET_ITER depth=3")


def test_assemble_multiline_program():
    program = assemble("""
        # vector add
        ITERATOR_CONFIG.BASE_ADDR f3=0 f5=0 imm=0
        ITERATOR_CONFIG.STRIDE    f3=0 f5=0 imm=1
        LOOP.SET_ITER             f3=0 imm=16
        LOOP.SET_NUM_INST         imm=1
        ALU.ADD IBUF1[it0], IBUF1[it0], IBUF1[it0]
    """)
    assert len(program) == 5
    assert program.compute_instruction_count() == 1


def test_roundtrip_every_compiled_program():
    """Every compiled benchmark program survives dis/re-assembly."""
    model = compile_model(build_tinynet())
    for cb in model.blocks:
        if cb.tile is None:
            continue
        back = assembly_roundtrip(cb.tile.program)
        assert back.pack() == cb.tile.program.pack()
