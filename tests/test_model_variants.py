"""Parameterizable model builders: the GeneSys 'generator' story.

The builders must produce valid, compilable graphs across a grid of
configurations, not just the paper's fixed points.
"""

import pytest

from repro.compiler import compile_model
from repro.models.bert import build_bert
from repro.models.gpt2 import build_gpt2
from repro.models.resnet50 import build_resnet50
from repro.models.vgg16 import build_vgg16
from repro.npu import NPUTandem


@pytest.mark.parametrize("seq", [32, 64, 384])
def test_bert_sequence_lengths(seq):
    graph = build_bert(seq=seq, layers=2)
    graph.validate()
    assert graph.tensor(graph.graph_outputs[0]).shape[1] == seq


@pytest.mark.parametrize("layers,hidden,heads", [(1, 128, 2), (3, 256, 4)])
def test_bert_width_depth_grid(layers, hidden, heads):
    graph = build_bert(seq=32, hidden=hidden, layers=layers, heads=heads,
                       intermediate=hidden * 4)
    softmaxes = sum(1 for n in graph.nodes if n.op_type == "Softmax")
    assert softmaxes == layers
    model = compile_model(graph)
    assert model.total_instructions() > 0


def test_gpt2_short_context_compiles_and_evaluates():
    graph = build_gpt2(seq=64, layers=2)
    result = NPUTandem().evaluate(compile_model(graph))
    assert result.total_seconds > 0
    assert "Softmax" in result.per_op_seconds


@pytest.mark.parametrize("size", [96, 160, 224])
def test_resnet_input_resolutions(size):
    graph = build_resnet50(input_size=size)
    graph.validate()
    final_hw = size // 32
    gap = next(n for n in graph.nodes if n.op_type == "GlobalAveragePool")
    assert graph.tensor(gap.inputs[0]).shape[-1] == final_hw


def test_vgg_small_input_compiles():
    graph = build_vgg16(input_size=64)
    model = NPUTandem().compile(graph)
    assert all(cb.tiles >= 1 for cb in model.blocks)


def test_longer_context_costs_more_nongemm():
    npu = NPUTandem()
    short = npu.evaluate(compile_model(build_gpt2(seq=64, layers=2)))
    long = npu.evaluate(compile_model(build_gpt2(seq=256, layers=2)))
    assert long.nongemm_seconds > short.nongemm_seconds
    assert (long.per_op_seconds["Softmax"]
            > 4 * short.per_op_seconds["Softmax"])
