"""The decode-step subsystem: KV-cache correctness, verifier, autotune.

The load-bearing properties of ``repro.llm``:

* the detailed machine (:class:`FunctionalRunner`) and the integer
  reference produce bit-identical logits and caches over a multi-step
  prefill + decode session;
* incremental decoding through the KV-cache is bit-exact against a
  full-context prefill of the same tokens;
* decode-step programs pass the static verifier clean and are accepted
  by the autotune searcher;
* the ``gpt2_rms`` zoo variant compiles and verifies clean.
"""

import numpy as np
import pytest

from repro.compiler import compile_model
from repro.llm import (
    LLM_CONFIGS,
    DecodeSession,
    available_llm_configs,
    build_step,
    decode_step_costs,
    get_llm_config,
    step_weights,
)


def test_config_registry():
    assert available_llm_configs() == sorted(LLM_CONFIGS)
    with pytest.raises(KeyError):
        get_llm_config("nope")
    cfg = get_llm_config("tinyllm")
    assert cfg.head_dim * cfg.heads == cfg.hidden
    # K + V, all layers, int32 words.
    assert cfg.kv_bytes_per_token == 4 * 2 * cfg.layers * cfg.hidden


def test_build_step_validates_window():
    cfg = get_llm_config("tinyllm")
    with pytest.raises(ValueError):
        build_step(cfg, cfg.max_context, 1)
    with pytest.raises(ValueError):
        build_step(cfg, 0, 0)


def test_step_weights_stable_across_shapes():
    """The same logical weight gets the same values at every
    (past_len, n_new), which is what makes a session coherent."""
    cfg = get_llm_config("tinyllm")
    prefill = step_weights(build_step(cfg, 0, 4))
    decode = step_weights(build_step(cfg, 4, 1))
    rope = {n for n in prefill if n.startswith("c_rope")}
    assert set(prefill) == set(decode)
    for name in set(prefill) - rope:
        np.testing.assert_array_equal(prefill[name], decode[name],
                                      err_msg=name)


def test_functional_matches_reference_session():
    """Detailed machine == integer reference: tokens, logits, caches."""
    prompt = [10, 74, 42]
    runs = {}
    for executor in ("functional", "reference"):
        session = DecodeSession("tinyllm", executor=executor)
        session.prefill(prompt)
        generated = session.decode(3)
        runs[executor] = (generated, session.last_logits,
                          session.k_caches, session.v_caches)
    fun, ref = runs["functional"], runs["reference"]
    assert fun[0] == ref[0]
    np.testing.assert_array_equal(fun[1], ref[1])
    for layer in range(get_llm_config("tinyllm").layers):
        np.testing.assert_array_equal(fun[2][layer], ref[2][layer])
        np.testing.assert_array_equal(fun[3][layer], ref[3][layer])


def test_incremental_decode_matches_full_prefill():
    """Cached decoding over [t0..tn] == one prefill of the same tokens.

    Cache columns past ``past + n_new`` are zero and masked by the
    causal softmax's offset, so the incremental path must reproduce the
    full-context logits and caches exactly.
    """
    cfg = get_llm_config("tinyllm")
    tokens = [3, 91, 27, 58, 7]
    incremental = DecodeSession(cfg, executor="reference")
    incremental.prefill(tokens[:1])
    for token in tokens[1:]:
        incremental._run_step([token], "decode")
    full = DecodeSession(cfg, executor="reference")
    full.prefill(tokens)
    np.testing.assert_array_equal(incremental.last_logits[0, -1],
                                  full.last_logits[0, -1])
    for layer in range(cfg.layers):
        np.testing.assert_array_equal(incremental.k_caches[layer],
                                      full.k_caches[layer])
        np.testing.assert_array_equal(incremental.v_caches[layer],
                                      full.v_caches[layer])


def test_session_records_and_machine_cycles():
    session = DecodeSession("tinyllm")
    session.prefill([1, 2, 3])
    session.decode(2)
    phases = [r.phase for r in session.records]
    assert phases == ["prefill", "decode", "decode"]
    assert all(r.machine_cycles > 0 for r in session.records)
    assert all(r.blocks > 0 for r in session.records)
    assert session.records[0].n_new == 3
    assert all(r.n_new == 1 for r in session.records[1:])
    assert session.past_len == 5


@pytest.mark.parametrize("past_len,n_new", [(0, 4), (7, 1)],
                         ids=["prefill", "decode"])
def test_decode_programs_verify_clean(past_len, n_new):
    """Static verifier accepts every decode-step program, no warnings."""
    from repro.analysis.verifier import verify_model
    cfg = get_llm_config("tinyllm")
    model = compile_model(build_step(cfg, past_len, n_new).graph,
                          verify=False)
    report = verify_model(model)
    assert report.errors == 0, report.to_json()
    assert report.warnings == 0, report.to_json()
    assert report.clean


def test_autotune_accepts_decode_step():
    """The pipeline searcher runs on a decode graph and its winner is
    verifier-clean and no worse than the default flow."""
    from repro.compiler import autotune_model
    from repro.npu import NPUTandem
    cfg = get_llm_config("tinyllm")
    graph = build_step(cfg, 4, 1).graph
    report = autotune_model(graph, NPUTandem().config, budget=4)
    assert report.best_cycles <= report.baseline_cycles
    assert any(cand["config"] == report.best_config
               and cand["status"] == "ok" for cand in report.candidates)


def test_gpt2_rms_zoo_variant_verifies_clean():
    from repro.analysis.verifier import verify_model
    from repro.models import build_model
    model = compile_model(build_model("gpt2_rms"), verify=False)
    report = verify_model(model)
    assert report.errors == 0, report.to_json()
    assert report.warnings == 0, report.to_json()


def test_decode_step_costs_resolve():
    costs = decode_step_costs("gpt2_rms")
    assert costs.prefill_s > 0
    assert costs.decode_step_s > 0
    assert costs.prefill_token_s == costs.prefill_s / costs.prefill_tokens
    # One decode step reads the whole KV window; one prefill token
    # amortizes the window across many tokens.
    assert costs.decode_step_s > costs.prefill_token_s
    assert costs.kv_bytes_per_token == \
        get_llm_config("gpt2_rms").kv_bytes_per_token
