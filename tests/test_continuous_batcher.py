"""Continuous/one-shot LLM batching against hand-computed schedules.

Unit costs make every schedule checkable by hand: ``prefill_token_s =
decode_step_s = 1.0`` and ``amortized_fraction = 0.5``, so a decode
step over ``B`` slots costs ``0.5 + 0.5 * B`` and a ``P``-token prefill
costs ``P`` at batch 1.
"""

import pytest

from repro.llm import (
    llm_grid,
    llm_report,
    llm_report_json,
    run_llm_sweep,
    validate_llm_report,
)
from repro.serving import (
    ContinuousBatcher,
    LLMRequest,
    LLMServiceCosts,
    OneShotBatcher,
    default_kv_budget,
    default_max_slots,
    llm_poisson_requests,
    make_llm_batcher,
)


def hand_costs(kv_budget=100):
    return LLMServiceCosts(config="hand", prefill_token_s=1.0,
                           decode_step_s=1.0, kv_budget_tokens=kv_budget,
                           amortized_fraction=0.5, slo_multiplier=5.0)


def test_batched_step_formula():
    costs = hand_costs()
    assert costs.batched_s(1.0, 1) == 1.0        # B=1 is isolated latency
    assert costs.batched_s(1.0, 2) == 1.5
    assert costs.batched_s(1.0, 4) == 2.5
    assert costs.prefill_s(4) == 4.0
    assert costs.ideal_latency_s(LLMRequest(0, 0.0, 2, 3)) == 5.0
    assert costs.slo_s(LLMRequest(0, 0.0, 2, 3)) == 25.0


def test_continuous_join_mid_batch():
    """r1 joins at a step boundary; its prefill stalls r0 (join cost)."""
    costs = hand_costs()
    r0 = LLMRequest(0, 0.0, 2, 4)
    r1 = LLMRequest(1, 2.5, 2, 2)
    batcher = ContinuousBatcher(costs, max_slots=4, collect_trace=True)
    report = batcher.run([r0, r1], duration_s=0.0)
    # Schedule: prefill r0 [0,2], step x1 [2,3], prefill r1 [3,5],
    # step x2 [5,6.5], step x2 [6.5,8] (r1 leaves), step x1 [8,9].
    assert report.completed == 2
    assert report.rejected == 0
    assert report.makespan_s == 9.0
    assert report.mean_batch_size == pytest.approx(1.5)   # [1, 2, 2, 1]
    assert report.kv_peak_tokens == 10                    # 6 + 4 reserved
    steps = [e for e in batcher.trace_log if e["kind"] == "step"]
    assert [s["batch"] for s in steps] == [1, 2, 2, 1]
    completes = {e["rid"]: e["t_s"] for e in batcher.trace_log
                 if e["kind"] == "complete"}
    assert completes == {0: 9.0, 1: 8.0}
    # TTFT: r0's first token lands at 3.0; r1 joins at 3.0, prefills
    # until 5.0 and gets its first token at 6.5 (arrival 2.5 -> 4.0).
    assert report.ttft_p99_ms == pytest.approx(4000.0)
    assert report.ttft_p50_ms == pytest.approx(3000.0)
    # r0's second inter-token gap absorbs r1's 2-second prefill stall.
    assert report.itl_p99_ms == pytest.approx(3500.0)


def test_continuous_kv_admission_blocks_head_of_line():
    """r1 fits a slot but not the KV budget until r0 retires."""
    costs = hand_costs(kv_budget=10)
    r0 = LLMRequest(0, 0.0, 4, 2)    # footprint 6
    r1 = LLMRequest(1, 0.1, 4, 2)    # footprint 6: 12 > 10 with r0 live
    batcher = ContinuousBatcher(costs, max_slots=4, collect_trace=True)
    report = batcher.run([r0, r1], duration_s=0.0)
    # r0: prefill [0,4], steps [4,5], [5,6] -> done, KV released.
    # r1 only then admits: prefill [6,10], steps [10,11], [11,12].
    assert report.completed == 2
    assert report.makespan_s == 12.0
    assert report.kv_peak_tokens == 6      # never co-resident
    steps = [e for e in batcher.trace_log if e["kind"] == "step"]
    assert [s["batch"] for s in steps] == [1, 1, 1, 1]
    prefills = [e for e in batcher.trace_log if e["kind"] == "prefill"]
    assert [p["start_s"] for p in prefills] == [0.0, 6.0]


def test_continuous_rejects_oversized_request():
    """A footprint beyond the whole budget can never run."""
    costs = hand_costs(kv_budget=10)
    giant = LLMRequest(0, 0.0, 8, 4)     # footprint 12 > 10
    ok = LLMRequest(1, 0.0, 2, 2)
    batcher = ContinuousBatcher(costs, max_slots=4, collect_trace=True)
    report = batcher.run([giant, ok], duration_s=0.0)
    assert report.rejected == 1
    assert report.completed == 1
    assert report.offered == 2
    rejects = [e for e in batcher.trace_log if e["kind"] == "reject"]
    assert [e["rid"] for e in rejects] == [0]


def test_oneshot_pads_to_longest_member():
    """Everyone waits for the padded batch to retire."""
    costs = hand_costs()
    r0 = LLMRequest(0, 0.0, 2, 2)
    r1 = LLMRequest(1, 0.5, 4, 3)
    batcher = OneShotBatcher(costs, max_slots=4, max_wait_s=1.0,
                             collect_trace=True)
    report = batcher.run([r0, r1], duration_s=0.0)
    # start = 1.0; padded prompt 4, padded output 3, batch 2:
    # prefill = 4 * 1.5 = 6, three steps of 1.5 -> finish 11.5.
    assert report.completed == 2
    assert report.makespan_s == 11.5
    assert report.mean_batch_size == pytest.approx(2.0)
    assert report.kv_peak_tokens == 14     # 2 * (4 + 3), padded
    completes = [e for e in batcher.trace_log if e["kind"] == "complete"]
    assert {e["t_s"] for e in completes} == {11.5}
    # r0 (2 own tokens) still waits for r1's third: latency 11.5 vs
    # the 4.0 it would take isolated.
    assert report.p99_ms == pytest.approx(11500.0)
    assert report.ttft_p99_ms == pytest.approx(8500.0)   # r0: 1+6+1.5


def test_make_llm_batcher_registry():
    costs = hand_costs()
    assert isinstance(make_llm_batcher("continuous", costs),
                      ContinuousBatcher)
    assert isinstance(make_llm_batcher("oneshot", costs), OneShotBatcher)
    with pytest.raises(ValueError):
        make_llm_batcher("paged", costs)


def test_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_LLM_KV_BUDGET", "77")
    monkeypatch.setenv("REPRO_LLM_MAX_SLOTS", "3")
    assert default_kv_budget() == 77
    assert default_max_slots() == 3
    monkeypatch.setenv("REPRO_LLM_KV_BUDGET", "junk")
    monkeypatch.setenv("REPRO_LLM_MAX_SLOTS", "")
    assert default_kv_budget() == 1024
    assert default_max_slots() == 8


def test_poisson_workload_deterministic(monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "4242")
    a = llm_poisson_requests(50.0, 2.0)
    b = llm_poisson_requests(50.0, 2.0)
    assert a == b
    assert all(r.arrival_s < 2.0 for r in a)
    assert all(8 <= r.prompt_tokens <= 64 for r in a)
    assert all(4 <= r.output_tokens <= 64 for r in a)


def test_sweep_serial_matches_jobs(monkeypatch):
    """Serial and --jobs 2 sweeps serialize to identical bytes."""
    monkeypatch.setenv("REPRO_SEED", "777")
    costs = hand_costs(kv_budget=400)
    points = llm_grid(costs=costs, rates=(20.0, 40.0), duration_s=1.0,
                      max_slots=4)
    serial = llm_report(points, run_llm_sweep(points, jobs=1))
    fanned = llm_report(points, run_llm_sweep(points, jobs=2))
    assert llm_report_json(serial) == llm_report_json(fanned)
    assert validate_llm_report(serial) == []


def test_sweep_report_summary_compares_schedulers(monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "777")
    costs = hand_costs(kv_budget=400)
    points = llm_grid(costs=costs, rates=(5.0,), duration_s=1.0,
                      max_slots=4)
    payload = llm_report(points, run_llm_sweep(points))
    assert set(payload["summary"]) == {"oneshot", "continuous",
                                       "continuous_beats_oneshot"}
    assert payload["schema"] == "repro-llm-report-v1"
    assert len(payload["rows"]) == 2


def test_validate_llm_report_catches_problems(monkeypatch):
    monkeypatch.setenv("REPRO_SEED", "777")
    costs = hand_costs(kv_budget=400)
    points = llm_grid(costs=costs, rates=(5.0,), duration_s=1.0,
                      max_slots=4)
    payload = llm_report(points, run_llm_sweep(points))
    assert validate_llm_report(payload) == []
    assert validate_llm_report([]) != []
    assert validate_llm_report({**payload, "schema": "nope"}) != []
    broken_rows = [dict(payload["rows"][0]), dict(payload["rows"][1])]
    del broken_rows[0]["goodput_rps"]
    assert validate_llm_report({**payload, "rows": broken_rows}) != []
