"""Execution controller FSM and end-to-end NPU evaluation."""

import pytest

from repro.models import MODEL_ORDER
from repro.npu import (
    ExecutionController,
    FsmState,
    NPUTandem,
    iso_a100_config,
    table3_config,
)


# -- controller ----------------------------------------------------------------
def test_state_sequences():
    controller = ExecutionController()
    assert controller.state_sequence("gemm_tandem") == [
        FsmState.BLOCK_START, FsmState.INST_DISPATCH, FsmState.GEMM_TANDEM,
        FsmState.BLOCK_DONE]
    assert FsmState.TANDEM in controller.state_sequence("tandem")


def test_gemm_only_schedule():
    controller = ExecutionController()
    sched = controller.schedule("gemm", tiles=4, gemm_tile_cycles=100)
    assert sched.total_cycles == 400
    assert sched.gemm_busy_cycles == 400
    assert sched.tandem_busy_cycles == 0


def test_tandem_only_schedule():
    controller = ExecutionController()
    sched = controller.schedule("tandem", tiles=3, tandem_tile_cycles=50,
                                dispatch_insts=10)
    assert sched.total_cycles == 10 + 150


def test_overlap_bounded_by_serial_and_critical_path():
    controller = ExecutionController()
    g, t, tiles = 100, 70, 16
    overlapped = controller.schedule("gemm_tandem", tiles, g, t,
                                     obuf_release_cycles=10)
    serial = controller.schedule("gemm_tandem", tiles, g, t, overlap=False)
    assert overlapped.total_cycles < serial.total_cycles
    # Steady state: one tile per max(g, t) plus fill.
    assert overlapped.total_cycles >= tiles * max(g, t)
    assert overlapped.total_cycles <= tiles * max(g, t) + g + t


def test_early_obuf_release_helps_when_gemm_bound():
    controller = ExecutionController()
    late = controller.schedule("gemm_tandem", 32, 50, 200,
                               obuf_release_cycles=200)
    early = controller.schedule("gemm_tandem", 32, 50, 200,
                                obuf_release_cycles=200)
    # With t > g the tandem unit is the bottleneck either way.
    assert early.total_cycles == late.total_cycles


def test_utilizations_sum_sensibly():
    controller = ExecutionController()
    sched = controller.schedule("gemm_tandem", 8, 100, 100,
                                obuf_release_cycles=50)
    assert 0.5 < sched.gemm_utilization <= 1.0
    assert 0.5 < sched.tandem_utilization <= 1.0


def test_large_tile_count_uses_steady_state():
    controller = ExecutionController()
    sched = controller.schedule("gemm_tandem", 100_000, 10, 7,
                                obuf_release_cycles=3)
    assert sched.total_cycles >= 100_000 * 10
    assert sched.total_cycles <= 100_000 * 10 + 10_000


# -- end-to-end evaluation ----------------------------------------------------------
@pytest.mark.parametrize("name", MODEL_ORDER)
def test_evaluate_every_benchmark(name, npu_results):
    result = npu_results[name]
    assert result.total_seconds > 0
    assert result.energy_joules > 0
    assert 0 <= result.gemm_utilization <= 1
    assert 0 <= result.nongemm_utilization <= 1
    # Busy time never exceeds wall-clock per unit.
    assert result.gemm_seconds <= result.total_seconds * 1.001
    assert result.nongemm_seconds <= result.total_seconds * 1.001


def test_per_op_seconds_accounted(npu_results):
    result = npu_results["bert"]
    assert result.per_op_seconds
    assert set(result.per_op_seconds) >= {"Softmax", "Gelu", "ReduceMean"}
    assert all(v >= 0 for v in result.per_op_seconds.values())


def test_energy_breakdown_sums_to_total(npu_results):
    for name in MODEL_ORDER:
        result = npu_results[name]
        assert sum(result.energy_breakdown.values()) == pytest.approx(
            result.energy_joules, rel=1e-6)


def test_overlap_beats_layerwise():
    tile = NPUTandem(overlap=True).evaluate("resnet50")
    layer = NPUTandem(overlap=False).evaluate("resnet50")
    assert tile.total_seconds < layer.total_seconds
    assert tile.gemm_utilization > layer.gemm_utilization


def test_depthwise_runs_on_tandem_not_gemm(npu_results):
    result = npu_results["mobilenetv2"]
    assert result.per_op_seconds.get("DepthwiseConv", 0) > 0


def test_scaled_config_is_faster():
    base = NPUTandem().evaluate("bert")
    scaled = NPUTandem(iso_a100_config()).evaluate("bert")
    assert scaled.total_seconds < base.total_seconds / 2


def test_table3_config_values():
    config = table3_config()
    assert config.sim.tandem.lanes == 32
    assert config.gemm.rows == config.gemm.cols == 32
    assert config.sim.tandem.interim_buf_kb * 2 == 128
    assert config.frequency_hz == 1.0e9


def test_iso_config_scales_tops():
    config = iso_a100_config()
    assert config.tandem_units == 216
    base = table3_config()
    assert (config.gemm.peak_ops_per_s
            > 200 * base.gemm.peak_ops_per_s)


def test_compile_accepts_graph_or_name():
    from repro.models import build_model
    npu = NPUTandem()
    by_name = npu.compile("tinynet")
    by_graph = npu.compile(build_model("tinynet"))
    assert by_name.total_instructions() == by_graph.total_instructions()
