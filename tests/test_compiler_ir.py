"""Compiler IR: allocation, residency, relayout, broadcast fusion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    CompileError,
    Resident,
    TileContext,
    broadcast_views,
    recipe_body,
)
from repro.compiler.integer_ops import Step, gelu_recipe
from repro.compiler.ir import TRef, c_strides
from repro.isa import Namespace
from repro.simulator.params import TandemParams


def _ctx(**kwargs):
    return TileContext(TandemParams(), **kwargs)


# -- allocation --------------------------------------------------------------
def test_alloc_first_fit_spills_to_second_buffer():
    ctx = _ctx()
    words = TandemParams().interim_buf_words
    ns1, base1 = ctx.alloc(words)
    ns2, base2 = ctx.alloc(10)
    assert ns1 == Namespace.IBUF1
    assert ns2 == Namespace.IBUF2
    assert base2 == 0


def test_alloc_capacity_exhausted():
    ctx = _ctx()
    words = TandemParams().interim_buf_words
    ctx.alloc(words)
    ctx.alloc(words)
    with pytest.raises(CompileError, match="exhausted"):
        ctx.alloc(1)


def test_peak_words_tracked():
    ctx = _ctx()
    ctx.alloc(100)
    ctx.alloc(50)
    assert ctx.peak_words == 150


# -- immediates ----------------------------------------------------------------
def test_imm_interning_dedupes():
    ctx = _ctx()
    a = ctx.imm(42)
    b = ctx.imm(42)
    c = ctx.imm(43)
    assert a == b
    assert c.base != a.base
    assert ctx.imm_values == [42, 43]


def test_imm_buf_capacity_is_32():
    ctx = _ctx()
    for i in range(32):
        ctx.imm(i)
    with pytest.raises(CompileError, match="IMM BUF"):
        ctx.imm(1000)


# -- residency --------------------------------------------------------------------
def test_source_loads_once_then_reuses():
    ctx = _ctx()
    first = ctx.source("x", (64,))
    second = ctx.source("x", (64,))
    assert first == second
    assert len(ctx.transfers) == 1


def test_source_relayouts_with_permute_engine():
    ctx = _ctx()
    ctx.source("x", (4, 8))
    ctx.source("x", (4, 8), layout=(1, 0))
    assert len(ctx.permutes) == 1
    assert ctx.permutes[0].perm == (1, 0)


def test_source_reinterprets_flat_to_shaped():
    ctx = _ctx()
    flat = ctx.source("x", (32,))
    shaped = ctx.source("x", (4, 8))
    assert shaped.ns == flat.ns
    assert shaped.base == flat.base
    assert len(ctx.permutes) == 0  # contiguous reinterpret is free


def test_strict_mode_rejects_numel_mismatch():
    ctx = _ctx(strict=True)
    ctx.source("x", (64,))
    with pytest.raises(CompileError, match="elements"):
        ctx.source("x", (65,))


def test_cost_mode_reuses_larger_resident():
    ctx = _ctx(strict=False)
    ctx.source("x", (64,))
    smaller = ctx.source("x", (32,))
    assert len(ctx.transfers) == 1  # no refetch
    assert smaller.shape == (32,)


def test_cost_mode_refetches_larger_request():
    ctx = _ctx(strict=False)
    ctx.source("x", (32,))
    ctx.source("x", (64,))
    assert len(ctx.transfers) == 2


def test_pad_resident_emits_fill_and_copy_nests():
    ctx = _ctx()
    ctx.source("x", (2, 4, 4))
    before = len(ctx.nests)
    padded = ctx.source("x", (2, 4, 4), layout=(1, 2, 0),
                        pad=((0, 0), (1, 1), (1, 1)), pad_value=-5)
    assert len(ctx.nests) == before + 2
    assert padded.shape == (6, 6, 2)


def test_zero_pad_treated_as_no_pad():
    ctx = _ctx()
    ctx.source("x", (2, 4))
    res = ctx.source("x", (2, 4), pad=((0, 0), (0, 0)))
    assert len(ctx.transfers) == 1
    assert res.shape == (2, 4)


def test_store_requires_residency():
    ctx = _ctx()
    with pytest.raises(CompileError, match="non-resident"):
        ctx.store("ghost")


def test_store_carries_layout_perm():
    ctx = _ctx()
    ctx.dest("y", (4, 8), layout=(1, 0))
    ctx.store("y")
    st_slot = ctx.transfers[-1]
    assert st_slot.direction == "st"
    assert st_slot.perm == (1, 0)


def test_alias_shares_storage():
    ctx = _ctx()
    ctx.dest("a", (24,))
    ctx.alias("b", "a", shape=(4, 6))
    assert ctx.resident("b").base == ctx.resident("a").base
    assert ctx.resident("b").shape == (4, 6)


def test_dram_alias_renames_transfer_target():
    ctx = _ctx()
    ctx.dram_alias["reshaped"] = "original"
    ctx.source("reshaped", (16,))
    assert ctx.transfers[0].tensor == "original"


def test_events_record_emission_order():
    ctx = _ctx()
    ctx.source("x", (8,))
    ctx.nest([("i", 8)], [])
    ctx.store("x")
    kinds = [type(e).__name__ for e in ctx.events]
    assert kinds == ["TransferSlot", "Nest", "TransferSlot"]


def test_nest_depth_limit():
    ctx = _ctx()
    with pytest.raises(CompileError, match="8-level"):
        ctx.nest([(f"l{i}", 2) for i in range(9)], [])


def test_nest_drops_unit_loops():
    ctx = _ctx()
    nest = ctx.nest([("a", 1), ("b", 5), ("c", 1)], [])
    assert nest.loops == [("b", 5)]


# -- broadcast fusion ---------------------------------------------------------------
def test_broadcast_same_shape_collapses_to_one_loop():
    loops, in_maps, out_map = broadcast_views((2, 3, 4), [(2, 3, 4), (2, 3, 4)])
    assert len(loops) == 1
    assert loops[0][1] == 24
    assert in_maps[0][loops[0][0]] == 1


def test_broadcast_bias_pattern():
    # (128, 768) + (768,): the bias blocks row/column collapse, so the
    # nest keeps two loops with the bias broadcast over rows.
    loops, in_maps, out_map = broadcast_views((128, 768), [(128, 768), (768,)])
    assert [c for _, c in loops] == [128, 768]
    row_var, col_var = loops[0][0], loops[1][0]
    assert in_maps[1][row_var] == 0
    assert in_maps[1][col_var] == 1
    assert out_map[row_var] == 768
    assert out_map[col_var] == 1


def test_broadcast_channel_scale_pattern():
    # (1, C, H, W) * (1, C, 1, 1): two loops (c, hw).
    loops, in_maps, out_map = broadcast_views((1, 8, 4, 4),
                                              [(1, 8, 4, 4), (1, 8, 1, 1)])
    counts = [c for _, c in loops]
    assert counts == [8, 16]
    c_var, hw_var = loops[0][0], loops[1][0]
    assert in_maps[1][c_var] == 1
    assert in_maps[1][hw_var] == 0


def test_broadcast_mask_pattern():
    # (1, H, S, S) + (1, 1, S, S): loops (h, s*s).
    loops, in_maps, _ = broadcast_views((1, 12, 16, 16),
                                        [(1, 12, 16, 16), (1, 1, 16, 16)])
    counts = [c for _, c in loops]
    assert counts == [12, 256]
    h_var = loops[0][0]
    assert in_maps[1][h_var] == 0


def test_broadcast_drops_batch_one_dim():
    loops, _, _ = broadcast_views((1, 64), [(1, 64), (1, 64)])
    assert [c for _, c in loops] == [64]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 6), min_size=1, max_size=4))
def test_broadcast_points_cover_output(shape):
    loops, in_maps, out_map = broadcast_views(tuple(shape),
                                              [tuple(shape), tuple(shape)])
    points = 1
    for _, c in loops:
        points *= c
    expected = 1
    for d in shape:
        expected *= d
    assert points == expected


# -- recipe lowering -----------------------------------------------------------------
def test_recipe_body_reuses_temps():
    ctx = _ctx()
    src = TRef(Namespace.IBUF1, 0, {"i": 1})
    dst = TRef(Namespace.IBUF1, 100, {"i": 1})
    body = recipe_body(ctx, gelu_recipe(), src, dst, [("i", 50)], 50)
    # Linear-scan reuse keeps scratch demand far below one buffer per step.
    temp_bases = {s.dst.base for s in body} - {100}
    assert len(temp_bases) <= 5
    assert body[-1].dst == dst


def test_recipe_body_interns_constants():
    ctx = _ctx()
    src = TRef(Namespace.IBUF1, 0, {"i": 1})
    dst = TRef(Namespace.IBUF1, 10, {"i": 1})
    steps = [Step("add", "t", "x", 99), Step("add", "out", "t", 99)]
    recipe_body(ctx, steps, src, dst, [("i", 10)], 10)
    assert ctx.imm_values == [99]


def test_c_strides():
    assert c_strides((2, 3, 4)) == [12, 4, 1]
    assert c_strides((5,)) == [1]
