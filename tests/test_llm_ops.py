"""The LLM operator lowerings: fast == scalar == reference, bit-exact.

Every operator added for autoregressive decoding — RMSNorm, SiLU /
SwiGLU, rotary embeddings, the fused causal-softmax attention tail, and
``CacheAppend`` — must execute identically on the instruction-major
fast path, the point-major scalar interpreter, and the integer
reference, including odd sequence lengths and the single-token decode
shape. The detailed machine's cycle counters must also be identical
between the two interpreter modes: fast mode is an implementation
strategy, not a different machine.
"""

import numpy as np
import pytest

from repro.compiler import ReferenceExecutor, compile_model
from repro.graph import GraphBuilder
from repro.npu import FunctionalRunner


def _run(graph, bindings, fast):
    model = compile_model(graph)
    runner = FunctionalRunner(model, fast=fast)
    runner.bind(bindings)
    outs = runner.run({k: v for k, v in bindings.items()
                       if k in graph.graph_inputs})
    return ({name: outs[name] for name in graph.graph_outputs},
            runner.total_machine_result())


def _assert_all_paths_agree(graph, bindings):
    """fast == scalar == reference on outputs; fast == scalar on cycles."""
    slow, slow_result = _run(graph, bindings, fast=False)
    fast, fast_result = _run(graph, bindings, fast=True)
    reference = ReferenceExecutor(graph).run(bindings)
    for name in graph.graph_outputs:
        np.testing.assert_array_equal(fast[name], slow[name],
                                      err_msg=f"fast vs scalar: {name}")
        np.testing.assert_array_equal(slow[name], reference[name],
                                      err_msg=f"scalar vs reference: {name}")
    for field in ("cycles", "compute_cycles", "dae_cycles",
                  "config_cycles", "permute_cycles"):
        assert getattr(fast_result, field) == getattr(slow_result, field), \
            f"counter {field} differs between fast and scalar modes"


def test_silu_agrees(rng):
    b = GraphBuilder("t")
    x = b.input("x", (3, 17), dtype="int32")
    graph = b.finish([b.silu(x)])
    _assert_all_paths_agree(graph, {"x": rng.integers(-1200, 1200, (3, 17))})


@pytest.mark.parametrize("shape", [(2, 5, 9), (1, 1, 7)], ids=str)
def test_swiglu_agrees(shape, rng):
    b = GraphBuilder("t")
    x = b.input("x", shape, dtype="int32")
    y = b.input("y", shape, dtype="int32")
    graph = b.finish([b.swiglu(x, y)])
    _assert_all_paths_agree(graph, {
        "x": rng.integers(-900, 900, shape),
        "y": rng.integers(-900, 900, shape),
    })


@pytest.mark.parametrize("shape", [(4, 13), (1, 32)], ids=str)
def test_rms_norm_agrees(shape, rng):
    b = GraphBuilder("t")
    x = b.input("x", shape, dtype="int32")
    graph = b.finish([b.rms_norm(x)])
    gamma = next(t for t in graph.tensors if t.startswith("w_rms"))
    _assert_all_paths_agree(graph, {
        "x": rng.integers(-2000, 2000, shape),
        gamma: rng.integers(-512, 512, (shape[-1],)),
    })


def test_rms_norm_all_zero_row_agrees(rng):
    # The epsilon path: a zero row must not divide by zero anywhere.
    b = GraphBuilder("t")
    x = b.input("x", (2, 8), dtype="int32")
    graph = b.finish([b.rms_norm(x)])
    gamma = next(t for t in graph.tensors if t.startswith("w_rms"))
    data = rng.integers(-2000, 2000, (2, 8))
    data[0] = 0
    _assert_all_paths_agree(graph, {"x": data,
                                    gamma: rng.integers(-512, 512, (8,))})


@pytest.mark.parametrize("shape", [(2, 7, 6), (1, 3, 5, 8), (1, 2, 1, 4)],
                         ids=str)
def test_rope_agrees(shape, rng):
    # Covers odd sequence lengths (7, 5) and the single-token decode
    # shape (seq == 1).
    b = GraphBuilder("t")
    x = b.input("x", shape, dtype="int32")
    graph = b.finish([b.rope(x)])
    cos = next(t for t in graph.tensors if t.startswith("c_ropecos"))
    sin = next(t for t in graph.tensors if t.startswith("c_ropesin"))
    tab_shape = (shape[-2], shape[-1] // 2)
    _assert_all_paths_agree(graph, {
        "x": rng.integers(-1000, 1000, shape),
        cos: rng.integers(-256, 256, tab_shape),
        sin: rng.integers(-256, 256, tab_shape),
    })


@pytest.mark.parametrize("shape,offset", [
    ((2, 3, 5, 5), 0),     # square prefill
    ((1, 2, 1, 9), 4),     # single-token decode over a partial cache
    ((1, 2, 3, 11), 2),    # odd lengths, mid-stream chunk
], ids=str)
def test_causal_softmax_agrees(shape, offset, rng):
    b = GraphBuilder("t")
    x = b.input("x", shape, dtype="int32")
    graph = b.finish([b.causal_softmax(x, offset=offset)])
    _assert_all_paths_agree(graph, {"x": rng.integers(-700, 700, shape)})


def test_cache_append_v_style_agrees(rng):
    # V layout (1, h, ctx, hd): append along the context axis directly.
    b = GraphBuilder("t")
    cache = b.input("v_cache", (1, 2, 8, 4), dtype="int32")
    new = b.input("v_new", (1, 2, 3, 4), dtype="int32")
    graph = b.finish([b.cache_append(cache, new, axis=2, offset=2)])
    _assert_all_paths_agree(graph, {
        "v_cache": rng.integers(-50, 50, (1, 2, 8, 4)),
        "v_new": rng.integers(-50, 50, (1, 2, 3, 4)),
    })


def test_cache_append_k_style_perm_agrees(rng):
    # K layout (1, h, hd, ctx): the new slice is permuted on the way
    # into the pre-transposed cache.
    b = GraphBuilder("t")
    cache = b.input("k_cache", (1, 2, 4, 8), dtype="int32")
    new = b.input("k_new", (1, 2, 3, 4), dtype="int32")
    graph = b.finish([b.cache_append(cache, new, axis=3, offset=5,
                                     perm=(0, 1, 3, 2))])
    _assert_all_paths_agree(graph, {
        "k_cache": rng.integers(-50, 50, (1, 2, 4, 8)),
        "k_new": rng.integers(-50, 50, (1, 2, 3, 4)),
    })


def test_cache_append_single_token_agrees(rng):
    # The decode-step shape proper: one new token at an odd offset.
    b = GraphBuilder("t")
    cache = b.input("v_cache", (1, 2, 9, 4), dtype="int32")
    new = b.input("v_new", (1, 2, 1, 4), dtype="int32")
    graph = b.finish([b.cache_append(cache, new, axis=2, offset=7)])
    _assert_all_paths_agree(graph, {
        "v_cache": rng.integers(-50, 50, (1, 2, 9, 4)),
        "v_new": rng.integers(-50, 50, (1, 2, 1, 4)),
    })


@pytest.mark.parametrize("op", ["silu", "rms_norm"])
def test_llm_ops_take_fast_path(op, rng, monkeypatch):
    """The hazard checker must accept every nest the lowerings emit."""
    from repro.simulator.fastexec import FastNestExecutor
    outcomes = []
    original = FastNestExecutor.supported

    def spy(self):
        ok = original(self)
        outcomes.append(ok)
        return ok

    monkeypatch.setattr(FastNestExecutor, "supported", spy)
    b = GraphBuilder("t")
    x = b.input("x", (5, 16), dtype="int32")
    graph = b.finish([getattr(b, op)(x)])
    bindings = {"x": rng.integers(-400, 400, (5, 16))}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is None and name not in graph.graph_inputs:
            bindings[name] = rng.integers(-64, 64, spec.shape)
    _run(graph, bindings, fast=True)
    assert outcomes, "fast path was never consulted"
    assert all(outcomes), f"{outcomes.count(False)} nests fell back"
