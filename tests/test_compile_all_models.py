"""Whole-suite compilation invariants across the seven benchmarks."""

import pytest

from repro.compiler import compile_model
from repro.graph import OpClass
from repro.isa import Namespace, Opcode, SyncFunc
from repro.models import MODEL_ORDER
from repro.npu import NPUTandem
from repro.simulator.params import TandemParams


@pytest.fixture(scope="module")
def compiled_models(request):
    npu = NPUTandem()
    return {name: npu.compile(name) for name in MODEL_ORDER}


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_every_nongemm_node_is_compiled(name, compiled_models, all_models):
    model = compiled_models[name]
    graph = all_models[name]
    compiled_ops = sum(len(cb.block.ops) for cb in model.blocks)
    nongemm_nodes = sum(1 for n in graph.nodes if not n.is_gemm)
    assert compiled_ops == nongemm_nodes


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_every_gemm_node_has_a_block(name, compiled_models, all_models):
    model = compiled_models[name]
    graph = all_models[name]
    gemm_blocks = sum(1 for cb in model.blocks if cb.block.gemm is not None)
    gemm_nodes = sum(1 for n in graph.nodes if n.is_gemm)
    assert gemm_blocks == gemm_nodes


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_tile_capacity_respected(name, compiled_models):
    words = TandemParams().interim_buf_words
    for cb in compiled_models[name].blocks:
        if cb.tile is not None:
            assert cb.tile.peak_words <= 2 * words
            assert cb.tiles >= 1


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_programs_well_formed(name, compiled_models):
    for cb in compiled_models[name].blocks:
        if cb.tile is None:
            continue
        program = cb.tile.program
        opcodes = [i.opcode for i in program]
        assert opcodes[0] == Opcode.SYNC
        assert opcodes[-1] == Opcode.SYNC
        # IMM BUF stays within its 32 slots.
        assert len(cb.tile.imm_values) <= 32
        # Loop bodies are properly sized: SET_NUM_INST followed by that
        # many compute words.
        insts = list(program)
        i = 0
        while i < len(insts):
            inst = insts[i]
            if (inst.opcode == Opcode.LOOP and inst.func == 1):  # SET_NUM_INST
                body = insts[i + 1:i + 1 + inst.imm]
                assert len(body) == inst.imm
                assert all(b.opcode in (Opcode.ALU, Opcode.CALCULUS,
                                        Opcode.COMPARISON) for b in body)
                i += 1 + inst.imm
            else:
                i += 1


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_fused_blocks_read_obuf(name, compiled_models):
    """GEMM+non-GEMM blocks consume the Output BUF and release it."""
    model = compiled_models[name]
    fused = [cb for cb in model.blocks if cb.kind == "gemm_tandem"]
    assert fused, f"{name} has no fused blocks"
    reads_obuf = 0
    for cb in fused:
        touches = any(
            inst.opcode in (Opcode.ALU, Opcode.CALCULUS, Opcode.COMPARISON)
            and (inst.src1.ns == Namespace.OBUF
                 or (inst.src2 and inst.src2.ns == Namespace.OBUF))
            for inst in cb.tile.program)
        if touches:
            reads_obuf += 1
            funcs = [i.func for i in cb.tile.program
                     if i.opcode == Opcode.SYNC]
            assert int(SyncFunc.SIMD_END_BUF) in funcs
    assert reads_obuf > len(fused) // 2


def test_transformers_use_permute_engine(compiled_models):
    for name in ("bert", "gpt2"):
        model = compiled_models[name]
        permutes = sum(len(cb.tile.permutes) for cb in model.blocks
                       if cb.tile is not None)
        assert permutes > 0, name


def test_depthwise_compiles_to_deep_nests(compiled_models):
    """The paper's canonical depth-wise loop nest has five levels; tiled
    compilations may drop degenerate (single-iteration) levels, so at
    least four survive. The untiled functional path keeps all five
    (covered by test_templates_functional)."""
    model = compiled_models["mobilenetv2"]
    found = False
    for cb in model.blocks:
        if cb.tile is None:
            continue
        for label, meta in cb.tile.op_metas:
            if label == "DepthwiseConv":
                assert any(len(nest.counts) >= 4 for nest in meta.nests)
                found = True
    assert found


def test_depthwise_five_levels_untiled():
    from repro.graph import GraphBuilder
    b = GraphBuilder("dw")
    x = b.input("x", (1, 8, 12, 12), dtype="int32")
    y = b.depthwise_conv(x, 3)
    model = compile_model(b.finish([y]))
    tile = model.blocks[0].tile
    assert any(len(nest.counts) == 5 for nest in tile.meta.nests)


def test_total_instruction_footprint_reasonable(compiled_models):
    """Per-tile programs are compact (32-bit ISA, Section 5)."""
    for name, model in compiled_models.items():
        words = model.total_instructions()
        assert 0 < words < 1_500_000, f"{name}: {words} words"


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_zoo_verifies_clean(name, compiled_models):
    """Every compiled program passes the static verifier: no errors, no
    warnings — only info-tier lint notes are tolerated."""
    from repro.analysis.verifier import verify_model
    report = verify_model(compiled_models[name])
    assert report.errors == 0, report.to_json()
    assert report.warnings == 0, report.to_json()
    assert report.clean
