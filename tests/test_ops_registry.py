"""Operator registry: Table 1 classes and cost descriptors."""

import pytest

from repro.graph import (
    NON_GEMM_CLASSES,
    TABLE1_EXAMPLES,
    OpClass,
    all_ops,
    class_of,
    is_gemm_op,
    op_info,
)


def test_gemm_class_members():
    for op in ("Conv", "MatMul", "Gemm"):
        assert is_gemm_op(op)
        assert class_of(op) is OpClass.GEMM


def test_table1_examples_all_registered():
    for cls, examples in TABLE1_EXAMPLES.items():
        for op in examples:
            assert class_of(op) is cls, f"{op} should be {cls}"


def test_five_non_gemm_classes():
    assert len(NON_GEMM_CLASSES) == 5
    assert OpClass.GEMM not in NON_GEMM_CLASSES


def test_depthwise_conv_is_reduction_not_gemm():
    # Table 1 places depth-wise conv in the reduction class; the Tandem
    # Processor (not the GEMM unit) executes it.
    info = op_info("DepthwiseConv")
    assert info.op_class is OpClass.REDUCTION
    assert info.is_reduction
    assert not info.is_gemm


def test_layout_ops_have_zero_arithmetic():
    for op in ("Transpose", "Reshape", "Concat", "Flatten"):
        assert op_info(op).is_layout_only


def test_unknown_operator_raises_with_suggestions():
    with pytest.raises(KeyError, match="unknown operator"):
        op_info("Softplus")


def test_complex_ops_cost_more_than_simple():
    assert op_info("Gelu").ops_per_element > op_info("Relu").ops_per_element
    assert op_info("Exp").ops_per_element > op_info("Add").ops_per_element


def test_binary_ops_have_arity_two():
    for op in ("Add", "Sub", "Mul", "Div", "Pow", "Greater"):
        assert op_info(op).arity == 2


def test_registry_is_copy():
    ops = all_ops()
    ops["Fake"] = None
    assert "Fake" not in all_ops()
