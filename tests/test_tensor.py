"""TensorSpec: shapes, dtypes, sizes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import DTYPE_BYTES, TensorSpec


def test_numel_and_nbytes():
    spec = TensorSpec("x", (2, 3, 4), "int32")
    assert spec.numel == 24
    assert spec.nbytes == 96
    assert spec.rank == 3


def test_int8_is_one_byte():
    assert TensorSpec("x", (10,), "int8").nbytes == 10


def test_scalar_shape():
    spec = TensorSpec("s", (1,), "int32")
    assert spec.numel == 1


def test_unknown_dtype_rejected():
    with pytest.raises(ValueError, match="unknown dtype"):
        TensorSpec("x", (1,), "float64")


def test_nonpositive_dim_rejected():
    with pytest.raises(ValueError, match="non-positive"):
        TensorSpec("x", (4, 0), "int32")


def test_with_shape_keeps_dtype():
    spec = TensorSpec("x", (2, 3), "int8")
    derived = spec.with_shape((6,), "y")
    assert derived.dtype == "int8"
    assert derived.shape == (6,)
    assert derived.name == "y"


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                max_size=5),
       st.sampled_from(sorted(DTYPE_BYTES)))
def test_nbytes_matches_dtype_width(shape, dtype):
    spec = TensorSpec("t", tuple(shape), dtype)
    expected = DTYPE_BYTES[dtype]
    for dim in shape:
        expected *= dim
    assert spec.nbytes == expected


def test_all_fixed_point_dtypes_registered():
    for dtype in ("fxp4", "fxp8", "fxp16", "fxp32"):
        assert dtype in DTYPE_BYTES
