"""Data Access Engine: gather/scatter pipelines and traffic accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Namespace
from repro.simulator import (
    DataAccessEngine,
    DramParams,
    DramStore,
    ScratchpadFile,
    TileTransfer,
)


def _dae(words=4096):
    dram = DramStore()
    pads = ScratchpadFile.build(words, words, 32, words)
    return dram, pads, DataAccessEngine(dram, pads, DramParams(), 1.0e9)


def test_plain_load():
    dram, pads, dae = _dae()
    dram.bind("x", np.arange(10))
    dae.execute(TileTransfer("ld", "x", Namespace.IBUF1, 5))
    assert np.array_equal(pads[Namespace.IBUF1].store_block(5, 10),
                          np.arange(10))
    assert dae.bytes_loaded == 40


def test_load_with_region():
    dram, pads, dae = _dae()
    dram.bind("x", np.arange(24).reshape(4, 6))
    region = (slice(1, 3), slice(2, 5))
    dae.execute(TileTransfer("ld", "x", Namespace.IBUF1, 0, region=region))
    expected = np.arange(24).reshape(4, 6)[1:3, 2:5].reshape(-1)
    assert np.array_equal(pads[Namespace.IBUF1].store_block(0, 6), expected)


def test_load_with_reshape_pad_transpose():
    dram, pads, dae = _dae()
    data = np.arange(12)
    dram.bind("x", data)
    transfer = TileTransfer(
        "ld", "x", Namespace.IBUF1, 0,
        pre_reshape=(3, 4), pad=((1, 1), (0, 0)), pad_value=-7,
        perm=(1, 0))
    dae.execute(transfer)
    expected = np.pad(data.reshape(3, 4), ((1, 1), (0, 0)),
                      constant_values=-7).transpose(1, 0)
    got = pads[Namespace.IBUF1].store_block(0, 20).reshape(4, 5)
    assert np.array_equal(got, expected)
    # Padding is generated on-chip, not fetched.
    assert dae.bytes_loaded == data.size * 4


def test_store_with_transpose_inverts():
    dram, pads, dae = _dae()
    original = np.arange(12).reshape(3, 4)
    dram.allocate("y", (3, 4))
    # Put the transposed layout on-chip, store with perm metadata.
    pads[Namespace.IBUF1].load_block(0, original.transpose(1, 0))
    dae.execute(TileTransfer("st", "y", Namespace.IBUF1, 0,
                             pre_reshape=(3, 4), perm=(1, 0)))
    assert np.array_equal(dram.get("y"), original)


def test_store_into_region():
    dram, pads, dae = _dae()
    dram.allocate("y", (2, 8))
    pads[Namespace.IBUF1].load_block(0, np.ones(8))
    dae.execute(TileTransfer("st", "y", Namespace.IBUF1, 0,
                             region=(slice(0, 1), slice(0, 8))))
    out = dram.get("y")
    assert np.array_equal(out[0], np.ones(8))
    assert np.array_equal(out[1], np.zeros(8))


def test_store_with_pad_rejected():
    dram, pads, dae = _dae()
    dram.allocate("y", (4,))
    with pytest.raises(ValueError, match="load-only"):
        dae.execute(TileTransfer("st", "y", Namespace.IBUF1, 0,
                                 pad=((1, 1),)))


def test_int8_traffic_counted_narrow():
    dram, pads, dae = _dae()
    dram.bind("x", np.arange(16))
    dae.execute(TileTransfer("ld", "x", Namespace.IBUF1, 0, element_bytes=1))
    assert dae.bytes_loaded == 16


def test_latency_charged_once_per_burst():
    dram, pads, dae = _dae()
    dram.bind("x", np.arange(64))
    first, _ = dae.execute(TileTransfer("ld", "x", Namespace.IBUF1, 0),
                           first=True)
    second, _ = dae.execute(TileTransfer("ld", "x", Namespace.IBUF1, 64),
                            first=False)
    assert first - second == DramParams().latency_cycles


def test_missing_tensor_raises():
    dram, pads, dae = _dae()
    with pytest.raises(KeyError, match="never allocated"):
        dae.execute(TileTransfer("ld", "ghost", Namespace.IBUF1, 0))


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6),
       st.permutations([0, 1]))
def test_load_store_roundtrip_property(h, w, perm):
    """Any transpose pattern round-trips losslessly through a scratchpad."""
    dram, pads, dae = _dae()
    data = np.arange(h * w).reshape(h, w)
    dram.bind("x", data)
    dram.allocate("y", (h, w))
    perm = tuple(perm)
    dae.execute(TileTransfer("ld", "x", Namespace.IBUF1, 0,
                             pre_reshape=(h, w), perm=perm))
    dae.execute(TileTransfer("st", "y", Namespace.IBUF1, 0,
                             pre_reshape=(h, w), perm=perm))
    assert np.array_equal(dram.get("y"), data)
