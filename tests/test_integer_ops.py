"""Integer recipes: accuracy vs float, exactness of numpy semantics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler.integer_ops import (
    FRAC_BITS,
    ceil_recipe,
    clip_recipe,
    exp_recipe,
    floor_recipe,
    from_fixed,
    gelu_recipe,
    i_erf,
    i_exp,
    i_gelu,
    i_reciprocal,
    i_sigmoid,
    i_sqrt,
    i_tanh,
    leaky_relu_recipe,
    run_recipe,
    square_recipe,
    to_fixed,
    v_add,
    v_div,
    v_lshift,
    v_mul,
    v_rshift,
    w32,
)

int32s = st.integers(-(1 << 31), (1 << 31) - 1)


# -- accuracy of the I-BERT-style approximations -----------------------------
def test_exp_accuracy_q8():
    xs = np.linspace(-8.0, 0.0, 500)
    got = from_fixed(i_exp(to_fixed(xs)))
    assert np.max(np.abs(got - np.exp(xs))) < 0.02


def test_exp_saturates_for_very_negative():
    assert i_exp(to_fixed(-1000.0)) == 0


def test_exp_of_zero_is_one():
    assert abs(from_fixed(i_exp(to_fixed(0.0))) - 1.0) < 0.01


def test_erf_accuracy():
    # I-BERT's erf polynomial has a known ~0.1 step at x -> 0 (harmless
    # inside GeLU, where it is multiplied by x); away from zero it is a
    # few-percent approximation.
    xs = np.linspace(-3.0, 3.0, 300)
    ref = np.vectorize(math.erf)(xs)
    got = from_fixed(i_erf(to_fixed(xs)))
    assert np.max(np.abs(got - ref)) < 0.11
    far = np.abs(xs) > 0.75
    assert np.max(np.abs(got[far] - ref[far])) < 0.04


def test_erf_is_odd_function():
    xs = to_fixed(np.linspace(0.1, 3.0, 50))
    assert np.array_equal(i_erf(xs), -i_erf(-xs))


def test_gelu_accuracy():
    xs = np.linspace(-4.0, 4.0, 400)
    ref = xs * 0.5 * (1 + np.vectorize(math.erf)(xs / math.sqrt(2)))
    got = from_fixed(i_gelu(to_fixed(xs)))
    assert np.max(np.abs(got - ref)) < 0.05


def test_sigmoid_accuracy_and_range():
    xs = np.linspace(-6.0, 6.0, 400)
    got = from_fixed(i_sigmoid(to_fixed(xs)))
    ref = 1.0 / (1.0 + np.exp(-xs))
    assert np.max(np.abs(got - ref)) < 0.02
    assert got.min() >= 0.0
    assert got.max() <= 1.0 + 1.0 / (1 << FRAC_BITS)


def test_sigmoid_midpoint():
    assert abs(from_fixed(i_sigmoid(to_fixed(0.0))) - 0.5) < 0.01


def test_tanh_accuracy():
    xs = np.linspace(-4.0, 4.0, 300)
    got = from_fixed(i_tanh(to_fixed(xs)))
    assert np.max(np.abs(got - np.tanh(xs))) < 0.04


def test_sqrt_relative_error():
    xs = np.linspace(0.05, 2000.0, 500)
    got = from_fixed(i_sqrt(to_fixed(xs)))
    rel = np.abs(got - np.sqrt(xs)) / np.sqrt(xs)
    assert np.max(rel) < 0.06


def test_sqrt_of_zero():
    assert i_sqrt(np.array([0])) >= 0


def test_reciprocal_accuracy():
    xs = np.linspace(0.5, 100.0, 200)
    # In Q8 the result is only as fine as the output quantization step.
    got = from_fixed(i_reciprocal(to_fixed(xs)))
    assert np.max(np.abs(got - 1 / xs)) <= 2 / (1 << FRAC_BITS)
    # With more fractional bits the relative error tightens.
    got14 = from_fixed(i_reciprocal(to_fixed(xs, 14), 14), 14)
    assert np.max(np.abs(got14 - 1 / xs) * xs) < 0.01


def test_higher_precision_improves_accuracy():
    xs = np.linspace(-4.0, 0.0, 200)
    err8 = np.max(np.abs(from_fixed(i_exp(to_fixed(xs, 8), 8), 8) - np.exp(xs)))
    err14 = np.max(np.abs(from_fixed(i_exp(to_fixed(xs, 14), 14), 14)
                          - np.exp(xs)))
    assert err14 < err8


# -- recipe structural properties ------------------------------------------------
def test_gelu_matches_paper_primitive_budget():
    # "five multiplications, three additions, a sign, an absolute, and a
    # minimum" — our explicit-shift lowering stays in the same ballpark.
    steps = gelu_recipe()
    muls = sum(1 for s in steps if s.func == "mul")
    adds = sum(1 for s in steps if s.func == "add")
    assert muls == 5
    assert adds == 3
    assert sum(1 for s in steps if s.func == "sign") == 1
    assert sum(1 for s in steps if s.func == "abs") == 1
    assert sum(1 for s in steps if s.func == "min") == 1


def test_recipes_end_with_out():
    for recipe in (exp_recipe(), gelu_recipe(), floor_recipe(),
                   ceil_recipe(), clip_recipe(-5, 5), square_recipe(),
                   leaky_relu_recipe(0.1)):
        assert recipe[-1].out == "out"


def test_leaky_relu_recipe_semantics():
    xs = to_fixed(np.array([-2.0, -0.5, 0.0, 1.0, 3.0]))
    got = from_fixed(run_recipe(leaky_relu_recipe(0.1), xs))
    ref = np.where(from_fixed(xs) > 0, from_fixed(xs), 0.1 * from_fixed(xs))
    assert np.max(np.abs(got - ref)) < 0.02


def test_clip_recipe_semantics():
    xs = np.array([-100, -3, 0, 3, 100])
    got = run_recipe(clip_recipe(-5, 5), xs)
    assert np.array_equal(got, np.clip(xs, -5, 5))


def test_floor_ceil_recipes():
    xs = to_fixed(np.array([-1.5, -0.25, 0.0, 0.75, 2.5]))
    floor = from_fixed(run_recipe(floor_recipe(), xs))
    ceil = from_fixed(run_recipe(ceil_recipe(), xs))
    assert np.array_equal(floor, np.floor(from_fixed(xs)))
    assert np.array_equal(ceil, np.ceil(from_fixed(xs)))


def test_square_recipe():
    xs = to_fixed(np.array([-3.0, 0.5, 2.0]))
    got = from_fixed(run_recipe(square_recipe(), xs))
    assert np.allclose(got, from_fixed(xs) ** 2, atol=0.05)


# -- vectorized primitive semantics (must mirror the scalar ALU) -----------------
@given(int32s, int32s)
def test_v_add_wraps_like_int32(a, b):
    got = int(v_add(a, b))
    assert -(1 << 31) <= got < (1 << 31)
    assert got == ((a + b + (1 << 31)) % (1 << 32)) - (1 << 31)


@given(int32s, int32s)
def test_v_div_truncates_toward_zero(a, b):
    if b == 0:
        expected = (1 << 31) - 1 if a >= 0 else -(1 << 31)
    else:
        expected = w32(int(abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1)))
    assert int(v_div(a, b)) == int(expected)


@given(int32s, st.integers(0, 31))
def test_v_shifts(a, n):
    assert int(v_rshift(a, n)) == a >> n
    assert int(v_lshift(a, n)) == int(w32(a << n))


@given(int32s, int32s)
def test_v_mul_matches_wrapped_product(a, b):
    assert int(v_mul(a, b)) == int(w32(a * b))
