"""Experiment registry and report rendering."""

import pytest

from repro.harness import (
    EXPERIMENTS,
    PAPER,
    all_experiment_ids,
    paper_vs_measured,
    render_table,
    run_experiment,
)

#: Every evaluation table/figure of the paper must have an experiment.
_REQUIRED = {
    "table1", "table2", "table3",
    "fig01", "fig02", "fig03", "fig05", "fig06", "fig08",
    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
    "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
}


def test_registry_covers_every_table_and_figure():
    assert _REQUIRED <= set(all_experiment_ids())


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("fig99")


def test_cheap_experiments_render():
    for exp_id in ("table3", "fig01", "fig02", "fig05", "fig26"):
        experiment = run_experiment(exp_id)
        text = experiment.render()
        assert exp_id in text
        assert "paper" in text
        assert experiment.summary


def test_paper_data_keys_match_registry():
    for exp_id in PAPER:
        assert exp_id in EXPERIMENTS, exp_id


def test_render_table_alignment():
    text = render_table(("name", "value"), [("a", 1.5), ("bb", 123456.0)],
                        title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "name" in lines[1]
    assert len(lines) == 5


def test_paper_vs_measured_ratio_column():
    text = paper_vs_measured({"metric": (2.0, 3.0)})
    assert "1.50" in text


def test_paper_vs_measured_handles_non_numeric():
    text = paper_vs_measured({"who_wins": ("mobilenetv2", "mobilenetv2")})
    assert "mobilenetv2" in text
