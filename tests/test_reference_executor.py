"""Reference executor: float-level sanity of the integer semantics."""

import numpy as np
import pytest

from repro.compiler import FRAC_BITS, ReferenceExecutor, from_fixed, to_fixed
from repro.graph import GraphBuilder


def _run(build, bindings):
    graph = build()
    return graph, ReferenceExecutor(graph).run(bindings)


def test_softmax_rows_sum_to_one(rng):
    b = GraphBuilder("t")
    x = b.input("x", (4, 16), dtype="int32")
    g = b.finish([b.softmax(x)])
    out = ReferenceExecutor(g).run({"x": rng.integers(-512, 512, (4, 16))})
    probs = from_fixed(out[g.graph_outputs[0]])
    sums = probs.sum(axis=-1)
    assert np.all(np.abs(sums - 1.0) < 0.15)
    assert np.all(probs >= 0)


def test_softmax_invariant_to_row_shift(rng):
    """Integer softmax subtracts the row max, so adding a constant to a
    row must not change the result (numerical-stability invariant)."""
    b = GraphBuilder("t")
    x = b.input("x", (2, 8), dtype="int32")
    g = b.finish([b.softmax(x)])
    data = rng.integers(-200, 200, (2, 8))
    ref = ReferenceExecutor(g)
    base = ref.run({"x": data})[g.graph_outputs[0]]
    shifted = ref.run({"x": data + 1000})[g.graph_outputs[0]]
    np.testing.assert_array_equal(base, shifted)


def test_layernorm_chain_zero_mean(rng):
    """x - mean(x) really has (integer-truncated) zero mean."""
    b = GraphBuilder("t")
    x = b.input("x", (1, 4, 32), dtype="int32")
    mean = b.reduce_mean(x, axis=-1)
    centered = b.sub(x, mean)
    g = b.finish([centered])
    out = ReferenceExecutor(g).run({"x": rng.integers(-500, 500, (1, 4, 32))})
    centered_mean = out[g.graph_outputs[0]].mean(axis=-1)
    assert np.all(np.abs(centered_mean) < 1.0)


def test_conv_bias_applied(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 2, 4, 4), dtype="int8")
    y = b.conv(x, 3, 1, pad=0)
    g = b.finish([y])
    node = g.nodes[0]
    weights = np.zeros((3, 2, 1, 1), dtype=int)
    bias = np.array([10, 20, 30])
    out = ReferenceExecutor(g).run({
        "x": np.zeros((1, 2, 4, 4), dtype=int),
        node.params[0]: weights,
        node.params[1]: bias,
    })
    result = out[g.graph_outputs[0]]
    for channel, expected in enumerate(bias):
        assert np.all(result[0, channel] == expected)


def test_gather_embedding_lookup(rng):
    b = GraphBuilder("t")
    tokens = b.input("tok", (1, 4), dtype="int32")
    table = b.param("w_embed", (10, 3), "int32")
    out = b.emit("Gather", [tokens], (1, 4, 3), "int32", {}, [table])
    g = b.finish([out])
    table_values = rng.integers(-9, 9, (10, 3))
    result = ReferenceExecutor(g).run({
        "tok": np.array([[1, 3, 3, 7]]),
        g.nodes[0].params[0]: table_values,
    })[g.graph_outputs[0]]
    np.testing.assert_array_equal(result[0, 0], table_values[1])
    np.testing.assert_array_equal(result[0, 1], table_values[3])
    np.testing.assert_array_equal(result[0, 3], table_values[7])


def test_unsupported_operator_reports_clearly():
    from repro.graph import Graph, Node, TensorSpec, ops, OpClass, OpInfo
    if not ops.is_registered("Mystery"):
        ops.register(OpInfo("Mystery", OpClass.ELEMENTWISE_MATH))
    g = Graph("t")
    g.add_tensor(TensorSpec("a", (4,)))
    g.add_tensor(TensorSpec("b", (4,)))
    g.mark_input("a")
    g.add_node(Node("n", "Mystery", ["a"], ["b"]))
    g.mark_output("b")
    with pytest.raises(NotImplementedError, match="Mystery"):
        ReferenceExecutor(g).run({"a": np.zeros(4, dtype=int)})


def test_int32_wraparound_matches_hardware():
    """Chained multiplies overflow exactly like the 32-bit write-back."""
    b = GraphBuilder("t")
    x = b.input("x", (2,), dtype="int32")
    y = b.mul(x, x)
    z = b.mul(y, y)
    g = b.finish([z])
    big = np.array([100_000, -70_000])
    out = ReferenceExecutor(g).run({"x": big})[g.graph_outputs[0]]
    assert np.all(out >= -(1 << 31))
    assert np.all(out < (1 << 31))
