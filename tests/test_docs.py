"""The generated-docs layer: ISA reference, coverage gate, architecture.

Three contracts:

* ``docs/isa.md`` is *generated* (``repro docs``) and must stay
  byte-identical to what :func:`repro.docsgen.render_isa_reference`
  produces from the live encoder — the committed file cannot drift
  from the ISA without this test failing.
* The rendered reference is internally consistent with
  :mod:`repro.isa`: every opcode, namespace and func enum appears.
* Docstring coverage over ``src/repro`` stays above the CI gate
  (``repro docs --coverage --fail-under``), and the hand-written
  ``docs/architecture.md`` keeps its cross-links.
"""

import pathlib

from repro.docsgen import (
    coverage_table,
    docstring_coverage,
    module_coverage,
    render_isa_reference,
)
from repro.isa import FUNC_ENUMS, Namespace, Opcode

REPO = pathlib.Path(__file__).resolve().parent.parent

#: CI's ``repro docs --coverage --fail-under`` threshold (keep in sync
#: with .github/workflows/ci.yml).
COVERAGE_GATE = 70.0


def test_isa_reference_is_byte_identical_to_generator():
    committed = (REPO / "docs" / "isa.md").read_text()
    assert committed == render_isa_reference(), (
        "docs/isa.md has drifted from the encoder; regenerate with "
        "`repro docs`")


def test_isa_reference_generation_is_deterministic():
    assert render_isa_reference() == render_isa_reference()


def test_isa_reference_covers_the_whole_isa():
    text = render_isa_reference()
    for opcode in Opcode:
        assert f"`{opcode.name}`" in text, opcode
    for namespace in Namespace:
        assert f"`{namespace.name}`" in text, namespace
    for enum_cls in set(FUNC_ENUMS.values()):
        for func in enum_cls:
            assert f"`{func.name}`" in text, func
    # Field layout tables carry explicit bit positions.
    assert "`[31:28]`" in text and "`[4:0]`" in text
    # Generated-file banner so nobody hand-edits it.
    assert "generated" in text.lower()


def test_docstring_coverage_holds_the_ci_gate():
    report = docstring_coverage()
    assert report.total >= 400, "coverage walker lost most of the package"
    percent = 100.0 * report.coverage
    assert percent >= COVERAGE_GATE, (
        f"docstring coverage {percent:.1f}% fell below the "
        f"{COVERAGE_GATE:.0f}% gate:\n{coverage_table(report)}")


def test_module_coverage_counts_public_defs(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        '"""Module docstring."""\n'
        "def documented():\n"
        '    """Yes."""\n'
        "def bare():\n"
        "    pass\n"
        "def _private():\n"
        "    pass\n"
        "class Thing:\n"
        '    """Doc."""\n'
        "    def method(self):\n"
        "        pass\n")
    cov = module_coverage(path, "mod")
    # module + documented + bare + Thing + Thing.method; _private skipped.
    assert cov.total == 5
    assert cov.documented == 3
    assert "mod.bare" in cov.missing and "mod.Thing.method" in cov.missing
    assert not any("_private" in name for name in cov.missing)


def test_architecture_doc_is_cross_linked():
    text = (REPO / "docs" / "architecture.md").read_text()
    # The five layers and the worked example.
    for anchor in ("graph", "compiler", "ISA", "simulators", "serving",
                   "Life of a GeLU tile"):
        assert anchor in text, anchor
    # Companion-doc links.
    assert "isa.md" in text
    assert "../DESIGN.md" in text
    assert "../README.md" in text
