"""The seven benchmark DNNs: structure, shapes, FLOPs sanity."""

import pytest

from repro.graph import OpClass
from repro.models import (
    DISPLAY_NAMES,
    MODEL_ORDER,
    MODEL_YEARS,
    available_models,
    build_model,
)

#: Published MAC/FLOP counts (GFLOPs = 2x GMACs) for batch-1 inference.
_EXPECTED_GFLOPS = {
    "vgg16": (28.0, 34.0),          # ~30.9
    "resnet50": (7.0, 9.5),         # ~8.2
    "yolov3": (58.0, 72.0),         # ~65.9 at 416x416
    "mobilenetv2": (0.5, 0.75),     # ~0.6
    "efficientnet": (0.7, 1.1),     # ~0.8 (B0)
    "bert": (19.0, 26.0),           # ~22.5 at seq 128
}


def test_all_seven_benchmarks_available():
    assert set(MODEL_ORDER) == {
        "vgg16", "resnet50", "yolov3", "mobilenetv2", "efficientnet",
        "bert", "gpt2"}
    for name in MODEL_ORDER:
        assert name in available_models()
        assert name in DISPLAY_NAMES
        assert name in MODEL_YEARS


@pytest.mark.parametrize("name", MODEL_ORDER)
def test_models_validate(name, all_models):
    graph = all_models[name]
    graph.validate()
    assert len(graph.topological_order()) == len(graph.nodes)


@pytest.mark.parametrize("name,bounds", sorted(_EXPECTED_GFLOPS.items()))
def test_flop_counts_match_published(name, bounds, all_models):
    gflops = all_models[name].total_cost().flops / 1e9
    lo, hi = bounds
    assert lo <= gflops <= hi, f"{name}: {gflops:.2f} GFLOPs"


def test_vgg16_structure(all_models):
    graph = all_models["vgg16"]
    convs = [n for n in graph.nodes if n.op_type == "Conv"]
    gemms = [n for n in graph.nodes if n.op_type == "Gemm"]
    pools = [n for n in graph.nodes if n.op_type == "MaxPool"]
    assert len(convs) == 13
    assert len(gemms) == 3
    assert len(pools) == 5


def test_resnet50_has_53_convs_and_16_residual_adds(all_models):
    graph = all_models["resnet50"]
    convs = [n for n in graph.nodes if n.op_type == "Conv"]
    adds = [n for n in graph.nodes if n.op_type == "Add"]
    assert len(convs) == 53
    assert len(adds) == 16
    assert any(n.op_type == "GlobalAveragePool" for n in graph.nodes)


def test_mobilenetv2_depthwise_count(all_models):
    graph = all_models["mobilenetv2"]
    dw = [n for n in graph.nodes if n.op_type == "DepthwiseConv"]
    clips = [n for n in graph.nodes if n.op_type == "Clip"]
    assert len(dw) == 17  # one per inverted-residual block
    assert len(clips) >= 2 * len(dw)


def test_efficientnet_has_se_blocks(all_models):
    graph = all_models["efficientnet"]
    sigmoids = [n for n in graph.nodes if n.op_type == "Sigmoid"]
    gaps = [n for n in graph.nodes if n.op_type == "GlobalAveragePool"]
    # 16 MBConv blocks, each with SE (one GAP + two Sigmoid-ish gates).
    assert len(gaps) == 17  # 16 SE blocks + final pooling
    assert len(sigmoids) >= 16


def test_yolov3_three_detection_scales(all_models):
    graph = all_models["yolov3"]
    assert len(graph.graph_outputs) == 3
    shapes = {graph.tensor(o).shape[-1] for o in graph.graph_outputs}
    assert shapes == {13, 26, 52}
    assert sum(1 for n in graph.nodes if n.op_type == "Resize") == 2
    assert sum(1 for n in graph.nodes if n.op_type == "Concat") == 2
    assert sum(1 for n in graph.nodes if n.op_type == "LeakyRelu") == 72


def test_bert_transformer_structure(all_models):
    graph = all_models["bert"]
    softmaxes = [n for n in graph.nodes if n.op_type == "Softmax"]
    gelus = [n for n in graph.nodes if n.op_type == "Gelu"]
    reduces = [n for n in graph.nodes if n.op_type == "ReduceMean"]
    assert len(softmaxes) == 12           # one per layer
    assert len(gelus) == 12
    # 25 LayerNorms (2/layer + embedding), 2 ReduceMeans each.
    assert len(reduces) == 50


def test_gpt2_causal_and_prenorm(all_models):
    graph = all_models["gpt2"]
    attn_adds = [n for n in graph.nodes
                 if n.op_type == "Add" and n.attr("causal") is True]
    assert len(attn_adds) == 12
    reduces = [n for n in graph.nodes if n.op_type == "ReduceMean"]
    assert len(reduces) == 50  # 24 LNs + final LN, 2 each
    # The LM head projects to the vocabulary.
    logits = graph.tensor(graph.graph_outputs[0])
    assert logits.shape[-1] == 50257


def test_language_models_are_nongemm_heavy(all_models):
    for name in ("bert", "gpt2"):
        fraction = all_models[name].gemm_fraction()
        assert fraction < 0.2, f"{name} GEMM fraction {fraction:.2f}"


def test_cnn_gemm_fraction_higher_than_lm(all_models):
    assert (all_models["vgg16"].gemm_fraction()
            > all_models["bert"].gemm_fraction())


def test_unknown_model_raises():
    with pytest.raises(KeyError, match="unknown model"):
        build_model("alexnet")


def test_build_model_is_memoized():
    assert build_model("tinynet") is build_model("tinynet")
