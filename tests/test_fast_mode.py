"""Fast (instruction-major) execution == scalar (point-major) execution.

The fast path may only be used where the hazard checker proves
independence, so outputs must be bit-identical for every operator.
"""

import numpy as np
import pytest

from repro.compiler import compile_model
from repro.graph import GraphBuilder
from repro.models import build_tinynet
from repro.npu import FunctionalRunner


def _outputs(graph, bindings, fast):
    model = compile_model(graph)
    runner = FunctionalRunner(model, fast=fast)
    runner.bind(bindings)
    outs = runner.run({k: v for k, v in bindings.items()
                       if k in graph.graph_inputs})
    return {name: outs[name] for name in graph.graph_outputs}


def _assert_modes_agree(graph, bindings):
    slow = _outputs(graph, bindings, fast=False)
    fast = _outputs(graph, bindings, fast=True)
    for name in slow:
        np.testing.assert_array_equal(fast[name], slow[name],
                                      err_msg=name)


OPS = [
    ("relu", (-300, 300), {}),
    ("gelu", (-800, 800), {}),
    ("sigmoid", (-700, 700), {}),
    ("softmax", (-500, 500), {}),
    ("tanh", (-500, 500), {}),
    ("leaky_relu", (-400, 400), {"alpha": 0.1}),
    ("clip", (-900, 900), {}),
]


@pytest.mark.parametrize("op,bounds,attrs", OPS, ids=[o[0] for o in OPS])
def test_unary_ops_agree(op, bounds, attrs, rng):
    b = GraphBuilder("t")
    x = b.input("x", (5, 23), dtype="int32")
    y = getattr(b, op)(x, **attrs)
    graph = b.finish([y])
    _assert_modes_agree(graph, {"x": rng.integers(*bounds, (5, 23))})


def test_reductions_agree(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 6, 9, 9), dtype="int32")
    pooled = b.maxpool(x, 3, 2, pad=1)
    gap = b.global_avgpool(x)
    graph = b.finish([pooled, gap])
    _assert_modes_agree(graph, {"x": rng.integers(-200, 200, (1, 6, 9, 9))})


def test_depthwise_agrees(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 4, 10, 10), dtype="int32")
    y = b.depthwise_conv(x, 3, stride=2)
    graph = b.finish([y])
    weight = next(t for t in graph.tensors if t.startswith("w_dw"))
    _assert_modes_agree(graph, {
        "x": rng.integers(-30, 30, (1, 4, 10, 10)),
        weight: rng.integers(-5, 5, (4, 1, 3, 3)),
    })


def test_tinynet_agrees_end_to_end(rng):
    graph = build_tinynet()
    bindings = {name: rng.integers(-8, 8, spec.shape)
                for name, spec in graph.tensors.items()
                if graph.producer(name) is None}
    _assert_modes_agree(graph, bindings)


def test_cast_saturation_agrees(rng):
    b = GraphBuilder("t")
    x = b.input("x", (4, 16), dtype="int32")
    y = b.cast(x, "int8")
    graph = b.finish([y])
    _assert_modes_agree(graph, {"x": rng.integers(-5000, 5000, (4, 16))})


def test_where_agrees(rng):
    b = GraphBuilder("t")
    a = b.input("a", (3, 11), dtype="int32")
    c = b.input("c", (3, 11), dtype="int32")
    flag = b.emit("Greater", [a, c], (3, 11), "int32")
    out = b.emit("Where", [flag, a, c], (3, 11), "int32")
    graph = b.finish([out])
    _assert_modes_agree(graph, {
        "a": rng.integers(-50, 50, (3, 11)),
        "c": rng.integers(-50, 50, (3, 11)),
    })


# ---------------------------------------------------------------------------
# Shapes newly covered by the widened hazard checker: streamed recipe
# temporaries (softmax's i-exp chain), reductions with trailing
# consumers, and LayerNorm-style ReduceMean chains.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("shape", [(1, 64), (7, 33), (13, 96)], ids=str)
def test_softmax_streamed_temps_agree(shape, rng):
    b = GraphBuilder("t")
    x = b.input("x", shape, dtype="int32")
    graph = b.finish([b.softmax(x)])
    _assert_modes_agree(graph, {"x": rng.integers(-500, 500, shape)})


@pytest.mark.parametrize("keepdims", [True, False])
def test_reduce_mean_agrees(keepdims, rng):
    b = GraphBuilder("t")
    x = b.input("x", (6, 32), dtype="int32")
    graph = b.finish([b.reduce_mean(x, axis=-1, keepdims=keepdims)])
    _assert_modes_agree(graph, {"x": rng.integers(-200, 200, (6, 32))})


def test_reduce_mean_chain_agrees(rng):
    # The LayerNorm front half: a reduction whose result feeds a
    # broadcast consumer, as in the paper's GPT-2 hot path.
    b = GraphBuilder("t")
    x = b.input("x", (6, 32), dtype="int32")
    mean = b.reduce_mean(x, axis=-1, keepdims=True)
    graph = b.finish([b.sub(x, mean)])
    _assert_modes_agree(graph, {"x": rng.integers(-200, 200, (6, 32))})


def test_avgpool_agrees(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 4, 9, 9), dtype="int32")
    graph = b.finish([b.avgpool(x, 3, 2, pad=1)])
    _assert_modes_agree(graph, {"x": rng.integers(-200, 200, (1, 4, 9, 9))})


@pytest.mark.parametrize("op", ["softmax", "gelu", "sigmoid", "tanh"])
def test_emerging_ops_take_fast_path(op, rng, monkeypatch):
    """The hazard checker must accept every nest in these programs.

    Softmax in particular streams its exp-recipe temporaries and
    re-accumulates into reduction registers; before the checker learned
    those patterns it fell back to the scalar interpreter.
    """
    from repro.simulator.fastexec import FastNestExecutor
    outcomes = []
    original = FastNestExecutor.supported

    def spy(self):
        ok = original(self)
        outcomes.append(ok)
        return ok

    monkeypatch.setattr(FastNestExecutor, "supported", spy)
    b = GraphBuilder("t")
    x = b.input("x", (5, 23), dtype="int32")
    graph = b.finish([getattr(b, op)(x)])
    _outputs(graph, {"x": rng.integers(-400, 400, (5, 23))}, fast=True)
    assert outcomes, "fast path was never consulted"
    assert all(outcomes), f"{outcomes.count(False)} nests fell back"


def test_fast_mode_actually_faster_on_large_nests(rng):
    import time
    b = GraphBuilder("t")
    x = b.input("x", (32, 128), dtype="int32")
    y = b.gelu(x)
    graph = b.finish([y])
    data = rng.integers(-500, 500, (32, 128))

    def run(fast):
        runner = FunctionalRunner(compile_model(graph), fast=fast)
        start = time.perf_counter()
        runner.run({"x": data})
        return time.perf_counter() - start

    slow_t = run(False)
    fast_t = run(True)
    assert fast_t < slow_t
