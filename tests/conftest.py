"""Shared fixtures: cached model builds and design evaluations.

RNG discipline: every stochastic test derives its generator from
``repro.runtime.seeded_rng``, so the whole suite replays exactly under
one ``REPRO_SEED`` environment variable.
"""

import pytest

from repro.models import MODEL_ORDER, build_model
from repro.npu import NPUTandem
from repro.runtime import EvalCache, seeded_rng, set_cache


@pytest.fixture(scope="session", autouse=True)
def _isolated_eval_cache(tmp_path_factory):
    """Point the runtime cache at a session-private directory.

    Keeps tests hermetic (no reuse of a developer's ``.repro_cache``)
    and keeps test artifacts out of the working tree.
    """
    set_cache(EvalCache(directory=tmp_path_factory.mktemp("repro_cache")))
    yield
    set_cache(None)


@pytest.fixture(scope="session")
def rng():
    return seeded_rng("tests-shared")


@pytest.fixture(scope="session")
def all_models():
    """The seven benchmark graphs (memoized by the zoo)."""
    return {name: build_model(name) for name in MODEL_ORDER}


@pytest.fixture(scope="session")
def npu_results():
    """NPU-Tandem end-to-end results for all benchmarks (computed once)."""
    npu = NPUTandem()
    return {name: npu.evaluate(name) for name in MODEL_ORDER}
