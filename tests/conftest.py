"""Shared fixtures: cached model builds and design evaluations."""

import numpy as np
import pytest

from repro.models import MODEL_ORDER, build_model
from repro.npu import NPUTandem


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def all_models():
    """The seven benchmark graphs (memoized by the zoo)."""
    return {name: build_model(name) for name in MODEL_ORDER}


@pytest.fixture(scope="session")
def npu_results():
    """NPU-Tandem end-to-end results for all benchmarks (computed once)."""
    npu = NPUTandem()
    return {name: npu.evaluate(name) for name in MODEL_ORDER}
