"""Systolic-array GEMM unit: functional semantics + cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm import BufferBudget, SystolicArray, SystolicParams, budget_from_params, gemm_dims
from repro.graph import GraphBuilder


def test_matmul_functional(rng):
    a = rng.integers(-128, 127, (5, 7))
    b = rng.integers(-128, 127, (7, 3))
    out = SystolicArray.matmul(a, b)
    assert np.array_equal(out, a @ b)


def test_conv2d_matches_naive(rng):
    x = rng.integers(-8, 8, (1, 3, 7, 7))
    w = rng.integers(-4, 4, (5, 3, 3, 3))
    out = SystolicArray.conv2d(x, w, stride=2, pad=1)
    # Naive reference.
    xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
    oh = ow = (7 + 2 - 3) // 2 + 1
    ref = np.zeros((1, 5, oh, ow), dtype=np.int64)
    for oc in range(5):
        for i in range(oh):
            for j in range(ow):
                patch = xp[0, :, 2 * i:2 * i + 3, 2 * j:2 * j + 3]
                ref[0, oc, i, j] = int((patch * w[oc]).sum())
    assert np.array_equal(out, ref)


def test_conv2d_channel_mismatch_rejected():
    with pytest.raises(ValueError, match="channel mismatch"):
        SystolicArray.conv2d(np.zeros((1, 3, 4, 4)), np.zeros((2, 4, 1, 1)))


def test_matmul_cycles_exact_tiling():
    array = SystolicArray(SystolicParams(rows=32, cols=32))
    # One output tile: K accumulation + fill/drain.
    assert array.matmul_cycles(32, 32, 100) == 100 + 64
    # 2x3 tiles.
    assert array.matmul_cycles(64, 96, 10) == 6 * (10 + 64)


def test_layer_cost_compute_vs_memory_bound():
    array = SystolicArray()
    # Huge K: compute bound.
    big = array.layer_cost(1024, 1024, 4096, 10, 10, 10)
    assert big.cycles == big.compute_cycles
    # Huge weights, tiny compute: memory bound.
    fat = array.layer_cost(1, 32, 32, 10, 100_000_000, 10)
    assert fat.cycles == fat.dram_cycles


def test_utilization_bounds():
    array = SystolicArray()
    cost = array.layer_cost(320, 320, 320, 1000, 1000, 1000)
    util = cost.utilization(array.params)
    assert 0 < util <= 1


def test_scaled_params_match_tops():
    base = SystolicParams()
    scaled = base.scaled(216)
    ratio = scaled.peak_ops_per_s / base.peak_ops_per_s
    # sqrt rounding: 216 -> 15^2 = 225.
    assert ratio == pytest.approx(225, rel=0.01)
    assert scaled.dram_bandwidth_bytes_per_s > base.dram_bandwidth_bytes_per_s


def test_gemm_dims_for_conv():
    b = GraphBuilder("t")
    x = b.input("x", (1, 16, 8, 8))
    y = b.conv(x, 32, 3)
    g = b.finish([y])
    node = next(n for n in g.nodes if n.op_type == "Conv")
    m, n, k = gemm_dims(node, g.out_spec(node), g.tensor(node.inputs[0]))
    assert (m, n, k) == (64, 32, 9 * 16)


def test_gemm_dims_for_matmul():
    b = GraphBuilder("t")
    a = b.input("a", (1, 4, 16, 32))
    c = b.input("c", (1, 4, 32, 8))
    y = b.matmul(a, c)
    g = b.finish([y])
    node = next(n for n in g.nodes if n.op_type == "MatMul")
    m, n, k = gemm_dims(node, g.out_spec(node), g.tensor(node.inputs[0]))
    assert (m, n, k) == (64, 8, 32)


def test_gemm_dims_rejects_non_gemm():
    b = GraphBuilder("t")
    x = b.input("x", (4, 4), dtype="int32")
    y = b.relu(x)
    g = b.finish([y])
    with pytest.raises(ValueError):
        gemm_dims(g.nodes[0], g.out_spec(g.nodes[0]), g.tensor("x"))


def test_buffer_budget_double_buffers_obuf():
    budget = budget_from_params(SystolicParams())
    assert budget.output_buf_bytes == 128 * 1024
    assert budget.fits_outputs(64 * 1024)
    assert not budget.fits_outputs(64 * 1024 + 1)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 100), st.integers(1, 100), st.integers(1, 200))
def test_cycles_monotone_in_problem_size(m, n, k):
    array = SystolicArray()
    assert array.matmul_cycles(m, n, k) <= array.matmul_cycles(m + 32, n, k)
    assert array.matmul_cycles(m, n, k) <= array.matmul_cycles(m, n, k + 1)
