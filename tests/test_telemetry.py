"""Unified telemetry: counters, spans, exporters, determinism.

Covers the contract layer by layer: the registry/tracer primitives, the
off-by-default discipline, counter parity between the fast and scalar
machine paths, reconciliation of the ``npu.*`` counters against the
analytic model, cache/serving instrumentation, trace-event schema
validation, and byte-identical counter dumps + span trees across
identical runs (serial and ``--jobs 2``).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.models import build_model
from repro.npu import FunctionalRunner, NPUTandem
from repro.runtime import EvalCache
from repro.simulator import estimate
from repro.telemetry import (
    CounterRegistry,
    Telemetry,
    get_telemetry,
    scoped_telemetry,
    set_telemetry,
    span_tree,
)
from repro.telemetry.counters import format_counters
from repro.telemetry.export import (
    chrome_trace,
    serving_trace_events,
    tile_timeline_events,
    validate_trace,
    validate_trace_file,
    write_trace,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


# ---------------------------------------------------------------------------
# Counter registry
# ---------------------------------------------------------------------------
def test_counter_registry_basics():
    reg = CounterRegistry()
    reg.add("a.b", 2)
    reg.add("a.b")
    reg.add("z", 0.5)
    assert reg.get("a.b") == 3
    assert isinstance(reg.get("a.b"), int)
    assert reg.get("missing") == 0
    assert "a.b" in reg and "missing" not in reg
    assert len(reg) == 2
    assert list(reg.as_dict()) == ["a.b", "z"]  # sorted


def test_counter_registry_rejects_negative_increments():
    reg = CounterRegistry()
    with pytest.raises(ValueError):
        reg.add("x", -1)


def test_counter_registry_merge_and_clear():
    a, b = CounterRegistry(), CounterRegistry()
    a.add("n", 1)
    b.add("n", 2)
    b.add("m", 5)
    a.merge(b.as_dict())
    assert a.as_dict() == {"m": 5, "n": 3}
    a.clear()
    assert len(a) == 0


def test_format_counters_table():
    text = format_counters({"cycles": 12, "util": 0.5}, title="t")
    assert "t" in text and "cycles" in text and "12" in text and "0.5" in text
    assert format_counters({}) == "(no counters)"


# ---------------------------------------------------------------------------
# Spans + sessions
# ---------------------------------------------------------------------------
def test_span_nesting_depth_and_seq():
    tel = Telemetry(enabled=True, label="t")
    with tel.span("outer"):
        with tel.span("inner", cat="x", k=1):
            pass
        with tel.span("inner2"):
            pass
    snap = tel.snapshot()
    by_name = {s["name"]: s for s in snap["spans"]}
    assert by_name["outer"]["depth"] == 1
    assert by_name["inner"]["depth"] == 2
    assert by_name["inner"]["args"] == {"k": 1}
    # Begin order: outer entered first.
    assert by_name["outer"]["seq"] < by_name["inner"]["seq"] \
        < by_name["inner2"]["seq"]
    tree = span_tree([snap])
    assert tree.splitlines() == [
        "[t]", "  outer", '    inner {"k": 1}', "    inner2"]


def test_disabled_telemetry_is_a_noop():
    tel = Telemetry(enabled=False)
    tel.count("x", 5)
    with tel.span("nothing"):
        pass
    snap = tel.snapshot()
    assert snap["counters"] == {} and snap["spans"] == []


def test_scoped_telemetry_installs_and_restores():
    outer = get_telemetry()
    with scoped_telemetry() as tel:
        assert get_telemetry() is tel
        assert tel.enabled
        get_telemetry().count("k")
        assert tel.counters.get("k") == 1
    assert get_telemetry() is outer


def test_env_var_controls_default_session(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    set_telemetry(None)
    try:
        assert get_telemetry().enabled
    finally:
        set_telemetry(None)
    monkeypatch.delenv("REPRO_TELEMETRY")
    set_telemetry(None)
    try:
        assert not get_telemetry().enabled
    finally:
        set_telemetry(None)


# ---------------------------------------------------------------------------
# Simulator counters: fast path == scalar path
# ---------------------------------------------------------------------------
def _machine_counters(fast):
    import numpy as np
    from repro.compiler import compile_model
    graph = build_model("tinynet")
    model = compile_model(graph)
    name = graph.graph_inputs[0]
    shape = graph.tensors[name].shape
    with scoped_telemetry() as tel:
        runner = FunctionalRunner(model, fast=fast)
        runner.run({name: np.zeros(shape, dtype=np.int64)})
        return tel.counters.as_dict()


def test_machine_counters_identical_between_fast_and_scalar():
    slow = _machine_counters(fast=False)
    fast = _machine_counters(fast=True)
    assert slow == fast
    assert slow.get("sim.insts.decoded", 0) > 0
    assert slow.get("sim.code_repeater.replays", 0) > \
        slow.get("sim.code_repeater.fetches", 0)
    assert any(name.startswith("sim.spad.") for name in slow)
    assert any(name.startswith("sim.alu.ops.") for name in slow)
    assert slow.get("sim.iter_table.reads", 0) > 0
    assert slow.get("sim.iter_table.writes", 0) > 0
    assert slow.get("sim.dae.loads", 0) > 0
    assert slow.get("sim.dae.bytes_loaded", 0) > 0
    assert slow.get("sim.cycles.total", 0) > 0
    # Per program run: overlap = min(compute, dae) and the stalls are the
    # one-sided differences, so summed over runs the identities
    # overlap + dae_stall = dae and overlap + compute_stall = compute hold.
    compute = (slow["sim.cycles.compute"] + slow["sim.cycles.config"]
               + slow["sim.cycles.permute"])
    overlap = slow["sim.dae.overlap_cycles"]
    assert overlap + slow.get("sim.stall.dae_bound_cycles", 0) == \
        slow["sim.cycles.dae"]
    assert overlap + slow.get("sim.stall.compute_bound_cycles", 0) == compute


# ---------------------------------------------------------------------------
# NPU counters reconcile with the analytic estimator
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("model_name", ["tinynet", "mobilenetv2"])
def test_npu_tandem_busy_counter_matches_estimate(model_name):
    npu = NPUTandem()
    model = npu.compile(model_name)
    with scoped_telemetry() as tel:
        result = npu.evaluate(model)
    counters = tel.counters.as_dict()
    analytic = sum(
        estimate(cb.tile.meta, model.sim_params).pipelined_cycles * cb.tiles
        for cb in model.blocks if cb.tile is not None)
    counter_busy = counters["npu.tandem.busy_cycles"]
    assert counter_busy == pytest.approx(analytic, rel=0.01)
    assert counters["npu.total_cycles"] > 0
    assert (counters["npu.gemm.busy_cycles"]
            + counters["npu.gemm.idle_cycles"]
            == counters["npu.total_cycles"])
    # And the RunResult utilization agrees with the counter ratio.
    assert result.nongemm_utilization == pytest.approx(
        counter_busy / counters["npu.total_cycles"], rel=1e-9)


# ---------------------------------------------------------------------------
# Cache counters
# ---------------------------------------------------------------------------
def test_cache_counters(tmp_path):
    cache = EvalCache(directory=tmp_path / "c")
    with scoped_telemetry() as tel:
        assert cache.get("results", "k1") is None          # miss
        cache.put("results", "k1", {"v": 1})               # store + bytes
        assert cache.get("results", "k1") == {"v": 1}      # memory hit
        cache._memory.clear()
        assert cache.get("results", "k1") == {"v": 1}      # disk hit
    counters = tel.counters.as_dict()
    assert counters["cache.results.misses"] == 1
    assert counters["cache.results.stores"] == 1
    assert counters["cache.results.hits"] == 2
    assert counters["cache.results.bytes_written"] > 0
    assert counters["cache.results.bytes_read"] > 0


# ---------------------------------------------------------------------------
# Serving counters + trace log
# ---------------------------------------------------------------------------
def _run_fleet(collect_trace=True):
    from repro.serving import (
        BatchPolicy,
        FleetSimulator,
        OpenLoopPoisson,
        ServiceCosts,
    )
    costs = ServiceCosts.resolve(["tinynet"])
    workload = OpenLoopPoisson(["tinynet"], 200.0, 0.5)
    sim = FleetSimulator(costs, devices=2, batch_policy=BatchPolicy(),
                         collect_trace=collect_trace)
    report = sim.run(workload, rate_rps=200.0)
    return sim, report


def test_serving_counters_match_report():
    with scoped_telemetry() as tel:
        sim, report = _run_fleet()
    counters = tel.counters.as_dict()
    assert counters["serving.requests.offered"] == report.offered
    assert counters["serving.requests.completed"] == report.completed
    assert counters["serving.requests.rejected"] == report.rejected
    assert counters["serving.compiles"] == report.compiles
    assert counters["serving.batches.requests"] == report.completed
    batches = counters["serving.batches.launched"]
    assert report.compile_cache_hit_rate == pytest.approx(
        1.0 - report.compiles / batches)
    assert len(report.per_device_utilization) == 2
    assert "per-device utilization" in report.table()
    assert "compile-cache hit rate" in report.table()
    assert "compile_cache_hit_rate" in report.as_dict()


def test_serving_trace_log_exports_valid_events():
    sim, report = _run_fleet()
    assert sim.trace_log, "collect_trace must populate the lifecycle log"
    assert all(e["kind"] in ("batch", "queue-reject", "verify-reject")
               for e in sim.trace_log)
    events = serving_trace_events(sim.trace_log)
    payload = chrome_trace([], device_events=events)
    validate_trace(payload)
    batches = [e for e in events if e["ph"] == "X"]
    assert len(batches) == len([e for e in sim.trace_log
                                if e["kind"] == "batch"])


def test_serving_trace_log_off_by_default():
    sim, _ = _run_fleet(collect_trace=False)
    assert sim.trace_log == []


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def test_chrome_trace_merges_snapshots_and_counters():
    a, b = Telemetry(enabled=True, label="a"), Telemetry(enabled=True,
                                                         label="b")
    with a.span("work"):
        a.count("n", 1)
    with b.span("work"):
        b.count("n", 2)
    payload = chrome_trace([a.snapshot(), b.snapshot()])
    validate_trace(payload)
    pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
    assert pids == {0, 1}
    assert payload["otherData"]["counters"] == {"n": 3}
    assert payload["otherData"]["spanTree"].splitlines() == [
        "[a]", "  work", "[b]", "  work"]


def test_tile_timeline_events_from_npu_trace():
    from repro.npu import trace_model
    events = tile_timeline_events(trace_model("tinynet"))
    payload = chrome_trace([], device_events=events)
    validate_trace(payload)
    slices = [e for e in events if e["ph"] == "X"]
    assert slices and {e["tid"] for e in slices} <= {0, 1}
    assert all(e["cat"] == "device" for e in slices)


def test_write_and_validate_trace_file(tmp_path):
    tel = Telemetry(enabled=True)
    with tel.span("s"):
        pass
    path = tmp_path / "out.json"
    write_trace(str(path), chrome_trace([tel.snapshot()]))
    payload = validate_trace_file(str(path))
    assert payload["displayTimeUnit"] == "ms"


@pytest.mark.parametrize("payload", [
    [],                                              # not an object
    {},                                              # no traceEvents
    {"traceEvents": []},                             # empty
    {"traceEvents": [{"ph": "?", "name": "x", "pid": 0, "tid": 0,
                      "ts": 0}]},                    # unknown phase
    {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                      "ts": 0}]},                    # X without dur
    {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0,
                      "ts": -1, "dur": 1}]},         # negative ts
    {"traceEvents": [{"ph": "i", "name": "", "pid": 0, "tid": 0,
                      "ts": 0}]},                    # empty name
    {"traceEvents": [{"ph": "i", "name": "x", "pid": "0", "tid": 0,
                      "ts": 0}]},                    # non-int pid
])
def test_validate_trace_rejects_malformed(payload):
    with pytest.raises(ValueError):
        validate_trace(payload)


# ---------------------------------------------------------------------------
# Determinism: identical runs, identical dumps (serial and --jobs 2)
# ---------------------------------------------------------------------------
def _other_data(trace_path):
    payload = validate_trace_file(str(trace_path))
    return json.dumps(payload["otherData"], sort_keys=True)


def _run_profile(tmp_path, tag):
    out = tmp_path / f"profile-{tag}.json"
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC),
               REPRO_CACHE_DIR=str(tmp_path / f"cache-{tag}"))
    subprocess.run(
        [sys.executable, "-m", "repro", "profile", "tinynet",
         "--trace-out", str(out)],
        check=True, capture_output=True, env=env, cwd=tmp_path)
    return _other_data(out)


def test_profile_counter_dump_is_deterministic(tmp_path):
    assert _run_profile(tmp_path, "a") == _run_profile(tmp_path, "b")


def _run_harness_traced(tmp_path, tag, *extra):
    out = tmp_path / f"harness-{tag}.json"
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC),
               REPRO_CACHE_DIR=str(tmp_path / f"cache-{tag}"))
    subprocess.run(
        [sys.executable, "-m", "repro.harness", "fig26", "table3",
         "--trace-out", str(out), *extra],
        check=True, capture_output=True, env=env, cwd=tmp_path)
    return _other_data(out)


def test_harness_trace_deterministic_serial(tmp_path):
    assert _run_harness_traced(tmp_path, "s1") == \
        _run_harness_traced(tmp_path, "s2")


def test_harness_trace_deterministic_jobs2(tmp_path):
    assert _run_harness_traced(tmp_path, "j1", "--jobs", "2") == \
        _run_harness_traced(tmp_path, "j2", "--jobs", "2")


# ---------------------------------------------------------------------------
# Autotune counters: identical serial and --jobs 2
# ---------------------------------------------------------------------------
def _autotune_counters(tmp_path, monkeypatch, tag, jobs):
    """Cold autotune of tinynet; returns the compiler.autotune.* counters.

    The parent process and any worker processes must share one cache
    directory (workers build their cache from ``REPRO_CACHE_DIR``), and
    each tag gets a fresh directory so both runs are cold.
    """
    from repro.compiler import autotune_model
    from repro.runtime import get_cache, set_cache

    cache_dir = tmp_path / f"cache-{tag}"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    previous = get_cache()
    set_cache(EvalCache(directory=cache_dir))
    try:
        with scoped_telemetry(Telemetry(enabled=True, label=tag)) as tel:
            autotune_model(build_model("tinynet"), budget=6, jobs=jobs)
            counters = tel.snapshot()["counters"]
    finally:
        set_cache(previous)
    return {k: v for k, v in counters.items()
            if k.startswith("compiler.autotune.")}


def test_autotune_counters_identical_serial_vs_jobs(tmp_path, monkeypatch):
    serial = _autotune_counters(tmp_path, monkeypatch, "serial", jobs=1)
    jobs2 = _autotune_counters(tmp_path, monkeypatch, "jobs2", jobs=2)
    assert serial == jobs2
    assert serial["compiler.autotune.searches"] == 1
    assert serial["compiler.autotune.candidates"] == 6
