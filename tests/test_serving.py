"""Serving layer: workloads, batching, routing, fleet sim, metrics."""

import json

import pytest

from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    ClosedLoop,
    FleetSimulator,
    Launch,
    OpenLoopPoisson,
    Request,
    ServiceCosts,
    TraceReplay,
    Wait,
    default_grid,
    percentile,
    plan_batch,
    run_sweep,
    simulate,
    sweep_table,
    zoo_mix_trace,
)
from repro.serving.scheduler import ModelCost


def toy_costs(latency_s=0.010, compile_s=0.005, amortized=0.5,
              models=("m",)):
    """Hand-set costs so expected times are computable by hand."""
    return ServiceCosts(
        costs={m: ModelCost(latency_s, compile_s) for m in models},
        amortized_fraction=amortized)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------
def test_poisson_workload_is_deterministic():
    a = OpenLoopPoisson(["bert"], 200.0, 2.0).initial()
    b = OpenLoopPoisson(["bert"], 200.0, 2.0).initial()
    assert a == b
    assert all(r.arrival_s < 2.0 for r in a)
    assert [r.rid for r in a] == list(range(len(a)))
    # Offered count is in the right ballpark for the rate.
    assert 200 * 2 * 0.5 < len(a) < 200 * 2 * 1.5


def test_poisson_workload_follows_repro_seed(monkeypatch):
    baseline = OpenLoopPoisson(["bert"], 100.0, 1.0).initial()
    monkeypatch.setenv("REPRO_SEED", "777")
    reseeded = OpenLoopPoisson(["bert"], 100.0, 1.0).initial()
    assert baseline != reseeded
    monkeypatch.setenv("REPRO_SEED", "777")
    assert OpenLoopPoisson(["bert"], 100.0, 1.0).initial() == reseeded


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        OpenLoopPoisson(["bert"], 0.0, 1.0)


def test_trace_replay_orders_and_numbers_requests():
    replay = TraceReplay([(0.5, "b"), (0.1, "a"), (0.3, "b")])
    requests = replay.initial()
    assert [r.model for r in requests] == ["a", "b", "b"]
    assert [r.rid for r in requests] == [0, 1, 2]
    assert replay.duration_s == 0.5


def test_zoo_mix_trace_covers_models():
    from repro.models import MODEL_ORDER
    replay = zoo_mix_trace(MODEL_ORDER, rate_rps=700.0, duration_s=1.0)
    served = {r.model for r in replay.initial()}
    assert served == set(MODEL_ORDER)


def test_closed_loop_one_outstanding_request_per_client():
    workload = ClosedLoop(["m"], clients=3, duration_s=1.0, think_s=0.01)
    first = workload.initial()
    assert len(first) == 3
    follow = workload.on_complete(first[0], 0.5)
    assert follow.client == first[0].client
    assert follow.arrival_s == pytest.approx(0.51)
    assert workload.on_complete(first[1], 0.995) is None  # past horizon


# ---------------------------------------------------------------------------
# Batching decisions
# ---------------------------------------------------------------------------
def _queue(*arrivals, model="m"):
    return [Request(i, model, t) for i, t in enumerate(arrivals)]


def test_single_policy_launches_one():
    decision = plan_batch(_queue(0.0, 0.0, 0.0), 0.0,
                          BatchPolicy("single", max_batch=8))
    assert decision == Launch(1)


def test_greedy_policy_takes_what_is_queued():
    decision = plan_batch(_queue(0.0, 0.0, 0.0), 0.0,
                          BatchPolicy("greedy", max_batch=8))
    assert decision == Launch(3)


def test_dynamic_policy_waits_then_launches_at_deadline():
    policy = BatchPolicy("dynamic", max_batch=4, max_wait_ms=2.0)
    queue = _queue(0.0, 0.0)
    assert plan_batch(queue, 0.0, policy) == Wait(0.002)
    assert plan_batch(queue, 0.002, policy) == Launch(2)


def test_dynamic_policy_launches_full_batch_immediately():
    policy = BatchPolicy("dynamic", max_batch=2, max_wait_ms=50.0)
    assert plan_batch(_queue(0.0, 0.0, 0.0), 0.0, policy) == Launch(2)


def test_batches_never_mix_models():
    policy = BatchPolicy("greedy", max_batch=8)
    queue = [Request(0, "a", 0.0), Request(1, "a", 0.0),
             Request(2, "b", 0.0), Request(3, "a", 0.0)]
    assert plan_batch(queue, 0.0, policy) == Launch(2)


def test_batch_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy("adaptive")
    with pytest.raises(ValueError):
        BatchPolicy("dynamic", max_batch=0)


# ---------------------------------------------------------------------------
# Service model
# ---------------------------------------------------------------------------
def test_batch_service_amortizes_fixed_cost():
    costs = toy_costs(latency_s=0.010, amortized=0.5)
    assert costs.batch_service_s("m", 1) == pytest.approx(0.010)
    assert costs.batch_service_s("m", 4) == pytest.approx(0.025)
    per_request = [costs.batch_service_s("m", b) / b for b in (1, 2, 4, 8)]
    assert per_request == sorted(per_request, reverse=True)
    assert costs.capacity_rps("m", 8) > costs.capacity_rps("m", 1)


def test_service_costs_resolve_uses_cached_evaluator():
    costs = ServiceCosts.resolve(["tinynet"])
    assert costs.latency_s("tinynet") > 0
    assert costs.compile_s("tinynet") > 0
    assert costs.models() == ("tinynet",)


# ---------------------------------------------------------------------------
# Fleet simulation
# ---------------------------------------------------------------------------
def test_single_device_serial_latencies_by_hand():
    # Two requests at t=0 and t=0.001, 10 ms service, no batching: the
    # second waits for the first. First launch also pays the compile.
    costs = toy_costs(latency_s=0.010, compile_s=0.002)
    workload = TraceReplay([(0.0, "m"), (0.001, "m")])
    report = simulate(workload, costs, devices=1,
                      batch_policy=BatchPolicy("single"))
    assert report.completed == 2
    assert report.compiles == 1
    # req0: 0 -> 0.012 (compile + service); req1: starts 0.012 -> 0.022.
    assert report.makespan_s == pytest.approx(0.022)
    assert report.p99_ms == pytest.approx(21.0)  # 0.022 - 0.001


def test_round_robin_spreads_across_devices():
    costs = toy_costs(latency_s=0.010, compile_s=0.0)
    workload = TraceReplay([(0.0, "m"), (0.0, "m")])
    report = simulate(workload, costs, devices=2, routing="round_robin",
                      batch_policy=BatchPolicy("single"))
    assert report.makespan_s == pytest.approx(0.010)
    assert report.per_device_utilization == pytest.approx([1.0, 1.0])


def test_model_affinity_minimizes_compiles():
    costs = toy_costs(models=("a", "b"), compile_s=0.001)
    # Pattern a,a,b,b,... so round-robin (parity) routing puts both
    # models on both devices.
    trace = [(0.001 * i, "a" if (i // 2) % 2 == 0 else "b")
             for i in range(40)]
    affinity = simulate(TraceReplay(trace), costs, devices=2,
                        routing="model_affinity",
                        batch_policy=BatchPolicy("greedy", max_batch=4))
    round_robin = simulate(TraceReplay(trace), costs, devices=2,
                           routing="round_robin",
                           batch_policy=BatchPolicy("greedy", max_batch=4))
    # Affinity compiles each model once fleet-wide; round-robin sends
    # both models to both devices and compiles (up to) once per device.
    assert affinity.compiles == 2
    assert round_robin.compiles == 4


def test_least_loaded_routes_to_first_clear_device():
    costs = toy_costs(latency_s=0.010, compile_s=0.0)
    # Burst of 3, then a straggler: the straggler must land on the
    # device whose backlog clears first, not the next in rotation.
    trace = [(0.0, "m")] * 3 + [(0.0201, "m")]
    least = simulate(TraceReplay(trace), costs, devices=2,
                     routing="least_loaded",
                     batch_policy=BatchPolicy("single"))
    assert least.completed == 4
    assert least.makespan_s == pytest.approx(0.0301)


def test_admission_control_sheds_load():
    costs = toy_costs(latency_s=0.010, compile_s=0.0)
    trace = [(0.0, "m")] * 10
    report = simulate(TraceReplay(trace), costs, devices=1,
                      batch_policy=BatchPolicy("single"),
                      admission=AdmissionPolicy(max_queue=3))
    assert report.rejected == 6          # 1 in service + 3 queued admitted
    assert report.completed == 4
    assert report.slo_attainment < 1.0   # rejections count as violations


def test_dynamic_batching_raises_throughput_under_overload():
    costs = toy_costs(latency_s=0.010, amortized=0.5, compile_s=0.0)
    arrivals = [(i * 0.0005, "m") for i in range(200)]  # 2000 req/s >> cap
    single = simulate(TraceReplay(arrivals), costs, devices=1,
                      batch_policy=BatchPolicy("single"))
    dynamic = simulate(TraceReplay(arrivals), costs, devices=1,
                       batch_policy=BatchPolicy("dynamic", max_batch=8,
                                                max_wait_ms=2.0))
    assert dynamic.mean_batch_size > 2.0
    assert dynamic.makespan_s < single.makespan_s
    assert dynamic.throughput_rps > 1.2 * single.throughput_rps


def test_closed_loop_self_limits():
    costs = toy_costs(latency_s=0.010, compile_s=0.0)
    workload = ClosedLoop(["m"], clients=2, duration_s=0.5, think_s=0.0)
    report = simulate(workload, costs, devices=1,
                      batch_policy=BatchPolicy("single"))
    # Two clients, one outstanding each, 10 ms serial service: one
    # completion per 10 ms (~50 over 0.5 s) regardless of eagerness.
    assert report.completed == pytest.approx(50, abs=3)
    assert report.max_queue_depth <= 2


def test_report_json_round_trips_and_table_renders():
    costs = toy_costs()
    report = simulate(TraceReplay([(0.0, "m")]), costs, devices=1)
    payload = json.loads(report.to_json())
    assert payload["completed"] == 1
    assert payload["devices"] == 1
    table = report.table()
    for needle in ("p50 latency", "p99 latency", "SLO attainment",
                   "throughput"):
        assert needle in table


def test_percentile_nearest_rank():
    values = sorted(float(v) for v in range(1, 101))
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile(values, 100) == 100.0
    assert percentile([5.0], 99) == 5.0
    assert percentile([], 99) == 0.0


def test_invalid_fleet_configs_rejected():
    costs = toy_costs()
    with pytest.raises(ValueError):
        FleetSimulator(costs, devices=0)
    with pytest.raises(ValueError):
        FleetSimulator(costs, routing="random")


# ---------------------------------------------------------------------------
# Sweep
# ---------------------------------------------------------------------------
def test_sweep_serial_and_parallel_are_byte_identical():
    costs = toy_costs(latency_s=0.002, compile_s=0.0)
    points = default_grid(model="m", fleets=(1, 2), rates=(100.0, 400.0),
                          duration_s=0.5, costs=costs)
    serial = sweep_table(run_sweep(points, jobs=1))
    parallel = sweep_table(run_sweep(points, jobs=2))
    assert serial == parallel
    assert "p99 (ms)" in serial


def test_grid_covers_the_full_cross_product():
    costs = toy_costs()
    points = default_grid(model="m", policies=("single", "dynamic"),
                          fleets=(1, 4), rates=(10.0, 20.0), costs=costs)
    combos = {(p.policy_kind, p.devices, p.rate_rps) for p in points}
    assert len(points) == len(combos) == 8


# ---------------------------------------------------------------------------
# Verification admission control
# ---------------------------------------------------------------------------
def test_unverified_model_is_shed_at_admission():
    costs = ServiceCosts(
        costs={"m": ModelCost(0.010, 0.005, verified=False)},
        amortized_fraction=0.5)
    workload = ClosedLoop(["m"], clients=2, duration_s=0.5, think_s=0.01)
    report = FleetSimulator(costs).run(workload)
    assert report.completed == 0
    assert report.verify_rejected == report.rejected == report.offered > 0
    assert report.slo_attainment == 0.0
    assert "verify-rejected" in report.table()


def test_require_verified_false_restores_service():
    costs = ServiceCosts(
        costs={"m": ModelCost(0.010, 0.005, verified=False)},
        amortized_fraction=0.5)
    workload = ClosedLoop(["m"], clients=2, duration_s=0.5, think_s=0.01)
    report = FleetSimulator(costs, require_verified=False).run(workload)
    assert report.completed > 0
    assert report.verify_rejected == 0


def test_verified_models_pass_admission_untouched():
    report = simulate(ClosedLoop(["m"], clients=1, duration_s=0.2,
                                 think_s=0.01), toy_costs())
    assert report.verify_rejected == 0
    assert report.completed > 0


def test_resolved_costs_carry_verification_bit():
    costs = ServiceCosts.resolve(["tinynet"])
    assert costs.is_verified("tinynet")
    assert not costs.is_verified("never-compiled")
