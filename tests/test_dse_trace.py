"""Design-space exploration and execution tracing."""

import pytest

from repro.analysis import DesignPoint, config_for, pareto_frontier, sweep
from repro.npu import (
    NPUTandem,
    overlap_fraction,
    render_timeline,
    trace_block,
    trace_model,
)


@pytest.fixture(scope="module")
def dse_results():
    return sweep("mobilenetv2", lanes=(16, 32), interim_buf_kb=(32, 64))


def test_sweep_covers_grid(dse_results):
    assert len(dse_results) == 4
    labels = {r.point.label() for r in dse_results}
    assert "32L/64KB/32x32" in labels


def test_more_lanes_never_slower(dse_results):
    by_point = {(r.point.lanes, r.point.interim_buf_kb): r
                for r in dse_results}
    assert by_point[(32, 64)].seconds <= by_point[(16, 64)].seconds


def test_pareto_frontier_subset(dse_results):
    frontier = pareto_frontier(dse_results)
    assert frontier
    assert set(id(r) for r in frontier) <= set(id(r) for r in dse_results)
    # Every non-frontier point is dominated by some frontier point.
    for result in dse_results:
        if result in frontier:
            continue
        assert any(f.seconds <= result.seconds
                   and f.energy_joules <= result.energy_joules
                   and f.tandem_area_mm2 <= result.tandem_area_mm2
                   for f in frontier)


def test_config_for_sets_knobs():
    config = config_for(DesignPoint(64, 128, 16))
    assert config.sim.tandem.lanes == 64
    assert config.sim.tandem.interim_buf_kb == 128
    assert config.gemm.rows == 16


# -- tracing -------------------------------------------------------------------
def test_trace_block_pipelines():
    events = trace_block("b", tiles=4, g=100, t=60, release=20)
    gemm = [e for e in events if e.unit == "gemm"]
    tandem = [e for e in events if e.unit == "tandem"]
    assert len(gemm) == len(tandem) == 4
    # Tandem tile i starts only after GEMM tile i finishes...
    for ge, te in zip(gemm, tandem):
        assert te.start_cycle >= ge.end_cycle
    # ...while GEMM tile i+1 overlaps Tandem tile i (software pipelining).
    assert gemm[1].start_cycle < tandem[0].end_cycle


def test_trace_model_orders_blocks():
    events = trace_model("tinynet")
    assert events
    block_order = []
    for event in events:
        if event.block not in block_order:
            block_order.append(event.block)
    starts = [min(e.start_cycle for e in events if e.block == b)
              for b in block_order]
    assert starts == sorted(starts)


def test_overlap_fraction_nonzero_for_fused_models():
    events = trace_model("resnet50")
    assert 0.0 < overlap_fraction(events) < 1.0


def test_render_timeline_shapes():
    events = trace_block("b", tiles=3, g=50, t=50, release=10)
    art = render_timeline(events, width=40)
    lines = art.splitlines()
    assert len(lines) == 3
    assert "#" in lines[1] and "#" in lines[2]
    assert render_timeline([]) == "(empty trace)"
