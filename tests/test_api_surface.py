"""Public API integrity: every exported name exists and imports cleanly."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.models",
    "repro.isa",
    "repro.simulator",
    "repro.gemm",
    "repro.compiler",
    "repro.npu",
    "repro.baselines",
    "repro.analysis",
    "repro.harness",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a docstring"


def test_top_level_quickstart_names():
    import repro
    for name in ("NPUTandem", "build_model", "compile_model",
                 "FunctionalRunner", "ReferenceExecutor", "RunResult"):
        assert name in repro.__all__


def test_version():
    import repro
    assert repro.__version__.count(".") == 2


def test_public_entry_points_are_callable():
    import repro
    npu = repro.NPUTandem()
    assert callable(npu.evaluate)
    assert callable(repro.compile_model)
    assert callable(repro.build_model)
