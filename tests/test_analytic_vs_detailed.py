"""Analytic model vs detailed machine: the paper's <=5 % validation.

Section 7: "These validations also show the closeness of the number of
cycles by error margin of <= 5%." Here the analytic estimator (used for
the full-network sweeps) is validated against the cycle-by-cycle
interpreter on the same compiled programs.
"""

import numpy as np
import pytest

from repro.compiler import compile_model
from repro.graph import GraphBuilder
from repro.models import build_tinynet
from repro.npu import FunctionalRunner
from repro.simulator import estimate


def _compare_cycles(graph, bindings):
    model = compile_model(graph)
    runner = FunctionalRunner(model)
    runner.bind(bindings)
    runner.run({k: v for k, v in bindings.items()
                if k in graph.graph_inputs})
    total_detailed = 0
    total_analytic = 0
    for (name, detailed), cb in zip(runner.block_results,
                                    [b for b in model.blocks if b.tile]):
        analytic = estimate(cb.tile.meta, model.sim_params)
        total_detailed += detailed.cycles
        total_analytic += analytic.cycles
        # Nest compute cycles agree exactly (shared timing model).
        assert analytic.compute_cycles == detailed.compute_cycles
        # Energy events agree to within rounding.
        assert analytic.energy.alu_pj == pytest.approx(
            detailed.energy.alu_pj, rel=1e-9)
    return total_detailed, total_analytic


def _rand_bindings(graph, rng, hi=20):
    return {name: rng.integers(-hi, hi, spec.shape)
            for name, spec in graph.tensors.items()
            if graph.producer(name) is None}


def test_tinynet_within_five_percent(rng):
    graph = build_tinynet()
    detailed, analytic = _compare_cycles(graph, _rand_bindings(graph, rng, 10))
    assert detailed > 0
    assert abs(analytic - detailed) / detailed <= 0.05


@pytest.mark.parametrize("op,shape", [
    ("gelu", (4, 37)),
    ("softmax", (3, 5, 13)),
    ("sigmoid", (2, 100)),
])
def test_single_ops_within_five_percent(op, shape, rng):
    b = GraphBuilder("t")
    x = b.input("x", shape, dtype="int32")
    y = getattr(b, op)(x)
    graph = b.finish([y])
    detailed, analytic = _compare_cycles(graph, {"x": rng.integers(-500, 0, shape)})
    assert abs(analytic - detailed) / detailed <= 0.05


def test_window_op_within_five_percent(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 8, 10, 10), dtype="int32")
    y = b.maxpool(x, 3, 2, pad=1)
    graph = b.finish([y])
    detailed, analytic = _compare_cycles(
        graph, {"x": rng.integers(-99, 99, (1, 8, 10, 10))})
    assert abs(analytic - detailed) / detailed <= 0.05


def test_instruction_counts_agree(rng):
    graph = build_tinynet()
    model = compile_model(graph)
    for cb in model.blocks:
        if cb.tile is None:
            continue
        analytic = estimate(cb.tile.meta, model.sim_params)
        assert analytic.instructions_decoded == len(cb.tile.program)
