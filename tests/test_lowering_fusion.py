"""Lowering structure, block formation, and tiling search."""

import pytest

from repro.compiler import (
    CompileError,
    compile_model,
    external_outputs,
    form_blocks,
    initial_tiles,
    search_tiles,
    split_block,
)
from repro.compiler.fusion import Block
from repro.graph import GraphBuilder
from repro.isa import Namespace, Opcode, SyncFunc
from repro.models import build_model
from repro.simulator.params import TandemParams


def _fused_graph():
    b = GraphBuilder("fused")
    x = b.input("x", (1, 4, 8, 8), dtype="int8")
    y = b.relu(b.conv(x, 4, 3))
    z = b.add(y, y)
    w = b.relu(b.conv(z, 4, 3))
    return b.finish([w])


# -- block formation ------------------------------------------------------------
def test_gemm_opens_new_block():
    graph = _fused_graph()
    blocks = form_blocks(graph)
    kinds = [blk.kind for blk in blocks]
    assert kinds == ["gemm_tandem", "gemm_tandem"]
    assert [len(blk.ops) for blk in blocks] >= [2, 1]


def test_leading_nongemm_forms_tandem_block():
    b = GraphBuilder("t")
    x = b.input("x", (4, 4), dtype="int32")
    y = b.relu(x)
    z = b.gemm(y, 8)
    graph = b.finish([z])
    blocks = form_blocks(graph)
    assert blocks[0].kind == "tandem"
    assert blocks[1].kind in ("gemm", "gemm_tandem")


def test_gemm_only_block():
    b = GraphBuilder("t")
    x = b.input("x", (1, 16))
    y = b.gemm(x, 8)
    graph = b.finish([y])
    blocks = form_blocks(graph)
    assert blocks[-1].kind == "gemm"
    assert blocks[-1].ops == []


def test_external_outputs_excludes_intrablock():
    graph = _fused_graph()
    blocks = form_blocks(graph)
    first = blocks[0]
    outs = external_outputs(first, graph)
    # Only the tensor feeding the next block's conv (via its cast)
    # escapes; the relu intermediate is consumed in-block.
    relu_out = first.ops[0].outputs[0]
    assert relu_out not in outs
    assert len(outs) >= 1


def test_split_block_halves_ops():
    graph = _fused_graph()
    block = form_blocks(graph)[0]
    assert len(block.ops) >= 2
    first, second = split_block(block)
    assert first.gemm is block.gemm
    assert second.gemm is None
    assert len(first.ops) + len(second.ops) == len(block.ops)


def test_split_single_op_block_rejected():
    block = Block(ops=form_blocks(_fused_graph())[0].ops[:1])
    with pytest.raises(ValueError, match="cannot split"):
        split_block(block)


# -- tiling -------------------------------------------------------------------------
def test_initial_tiles_from_obuf_budget():
    graph = build_model("vgg16")
    blocks = form_blocks(graph)
    big = max(blocks, key=lambda blk: (graph.out_spec(blk.gemm).numel
                                       if blk.gemm else 0))
    params = TandemParams()
    tiles = initial_tiles(big, graph, params)
    out_words = graph.out_spec(big.gemm).numel
    assert tiles >= out_words / (params.obuf_words // 2)


def test_search_tiles_doubles_until_fit():
    attempts = []

    def try_compile(tiles):
        attempts.append(tiles)
        if tiles < 8:
            raise CompileError("tile needs more words")
        return "compiled"

    block = Block()
    graph = build_model("tinynet")
    tiles, result = search_tiles(block, graph, TandemParams(), try_compile)
    assert tiles == 8
    assert result == "compiled"
    assert attempts == [1, 2, 4, 8]


def test_search_tiles_gives_up_on_imm_pressure():
    def try_compile(tiles):
        raise CompileError("IMM BUF exhausted (32 slots)")

    with pytest.raises(CompileError, match="IMM BUF"):
        search_tiles(Block(), build_model("tinynet"), TandemParams(),
                     try_compile)


# -- lowered structure -----------------------------------------------------------------
def test_program_bracketed_by_sync():
    model = compile_model(_fused_graph())
    for cb in model.blocks:
        if cb.tile is None:
            continue
        opcodes = [i.opcode for i in cb.tile.program]
        assert opcodes[0] == Opcode.SYNC
        assert opcodes[-1] == Opcode.SYNC
        funcs = [i.func for i in cb.tile.program if i.opcode == Opcode.SYNC]
        assert int(SyncFunc.SIMD_START_EXEC) in funcs
        assert int(SyncFunc.SIMD_END_EXEC) in funcs


def test_obuf_release_sync_woven_after_last_obuf_read():
    model = compile_model(_fused_graph())
    fused = next(cb for cb in model.blocks if cb.kind == "gemm_tandem")
    program = fused.tile.program
    release_positions = [pc for pc, inst in enumerate(program)
                         if inst.opcode == Opcode.SYNC
                         and inst.func == int(SyncFunc.SIMD_END_BUF)]
    assert len(release_positions) == 1
    # Every compute instruction after the release must not read OBUF.
    for inst in list(program)[release_positions[0] + 1:]:
        if inst.opcode in (Opcode.ALU, Opcode.CALCULUS, Opcode.COMPARISON):
            assert inst.src1.ns != Namespace.OBUF
            assert (inst.src2 is None or inst.src2.ns != Namespace.OBUF)
    assert 0.0 < fused.tile.obuf_release_fraction <= 1.0


def test_every_instruction_packs_to_32_bits():
    model = compile_model(_fused_graph())
    for cb in model.blocks:
        if cb.tile is None:
            continue
        for word in cb.tile.program.pack():
            assert 0 <= word < (1 << 32)


def test_op_metas_cover_block_ops():
    model = compile_model(_fused_graph())
    for cb in model.blocks:
        if cb.tile is None:
            continue
        labels = [label for label, _meta in cb.tile.op_metas]
        assert labels == [op.op_type for op in cb.block.ops]


def test_roundtrip_through_binary():
    """Compiled programs survive pack/unpack (deployable artifact)."""
    model = compile_model(_fused_graph())
    cb = next(cb for cb in model.blocks if cb.tile is not None)
    blob = cb.tile.program.to_bytes()
    from repro.isa import TandemProgram
    back = TandemProgram.from_bytes("rt", blob)
    assert back.pack() == cb.tile.program.pack()
