"""Loop interchange / fission: legality checks and result preservation."""

import numpy as np
import pytest

from repro.compiler import CompileError, Nest, Stmt, TRef
from repro.compiler.transforms import (
    fission,
    fissionable,
    interchange,
    is_pointwise_parallel,
)
from repro.isa import (
    AluFunc,
    Namespace,
    Opcode,
    TandemProgram,
    alu,
    iterator_base,
    iterator_stride,
    loop_iter,
    loop_num_inst,
)
from repro.isa.instructions import Operand
from repro.simulator import TandemMachine

NS = Namespace.IBUF1


def _stmt(func, dst, src1, src2=None):
    return Stmt(Opcode.ALU, int(func), dst, src1, src2)


def _elementwise_nest():
    loops = [("i", 4), ("j", 8)]
    x = TRef(NS, 0, {"i": 8, "j": 1})
    t = TRef(NS, 32, {"i": 8, "j": 1})
    y = TRef(NS, 64, {"i": 8, "j": 1})
    return Nest(loops, [_stmt(AluFunc.ADD, t, x, x),
                        _stmt(AluFunc.MUL, y, t, t)])


def _reduction_nest():
    loops = [("k", 8), ("c", 4)]
    x = TRef(NS, 0, {"k": 4, "c": 1})
    s = TRef(NS, 32, {"k": 0, "c": 1})  # accumulates over k
    return Nest(loops, [_stmt(AluFunc.ADD, s, s, x)])


def test_pointwise_parallel_detection():
    assert is_pointwise_parallel(_elementwise_nest())
    assert not is_pointwise_parallel(_reduction_nest())


def test_interchange_swaps_levels():
    swapped = interchange(_elementwise_nest(), [1, 0])
    assert [v for v, _ in swapped.loops] == ["j", "i"]
    assert swapped.body == _elementwise_nest().body


def test_interchange_rejects_bad_permutation():
    with pytest.raises(CompileError, match="permutation"):
        interchange(_elementwise_nest(), [0, 0])


def test_interchange_rejects_accumulation():
    with pytest.raises(CompileError, match="dependence"):
        interchange(_reduction_nest(), [1, 0])


def test_fission_splits_independent_body():
    parts = fission(_elementwise_nest())
    assert len(parts) == 2
    assert all(len(p.body) == 1 for p in parts)
    assert all(p.loops == _elementwise_nest().loops for p in parts)


def test_fission_rejects_write_after_read():
    loops = [("i", 8)]
    a = TRef(NS, 0, {"i": 1})
    b = TRef(NS, 8, {"i": 1})
    # First reads a; second overwrites a with the same walk.
    nest = Nest(loops, [_stmt(AluFunc.ADD, b, a, a),
                        _stmt(AluFunc.MUL, a, b, b)])
    assert not fissionable(nest)
    with pytest.raises(CompileError, match="hazard"):
        fission(nest)


def test_fission_rejects_scalar_read_inside_later_write_extent():
    # stmt1 reads a scalar (empty stride map) at address 5; stmt2's
    # write walks 0..7 and overwrites it. The bases differ (5 vs 0), so
    # a base-equality alias test would silently let the hazard through —
    # the extent check must reject it.
    loops = [("i", 8)]
    scalar = TRef(NS, 5, {})
    dst = TRef(NS, 0, {"i": 1})
    out = TRef(NS, 16, {"i": 1})
    nest = Nest(loops, [_stmt(AluFunc.ADD, out, scalar, scalar),
                        _stmt(AluFunc.MUL, dst, out, out)])
    assert not fissionable(nest)
    with pytest.raises(CompileError, match="overlapping"):
        fission(nest)


def test_fission_rejects_reversed_walk_overlap():
    # stmt2 writes the same 0..7 region as stmt1's read, but walking it
    # backwards from base 7 with stride -1: different walk, different
    # base, same addresses. Must be rejected, not silently applied.
    loops = [("i", 8)]
    fwd = TRef(NS, 0, {"i": 1})
    rev = TRef(NS, 7, {"i": -1})
    out = TRef(NS, 16, {"i": 1})
    nest = Nest(loops, [_stmt(AluFunc.ADD, out, fwd, fwd),
                        _stmt(AluFunc.MUL, rev, out, out)])
    assert not fissionable(nest)
    with pytest.raises(CompileError, match="overlapping"):
        fission(nest)


def test_fission_allows_disjoint_extents_under_different_walks():
    # Different walks over the same namespace are fine when the address
    # extents cannot meet (read 0..7, later write 8..15 reversed).
    loops = [("i", 8)]
    src = TRef(NS, 0, {"i": 1})
    rev = TRef(NS, 15, {"i": -1})
    out = TRef(NS, 32, {"i": 1})
    nest = Nest(loops, [_stmt(AluFunc.ADD, out, src, src),
                        _stmt(AluFunc.MUL, rev, out, out)])
    parts = fission(nest)
    assert [len(p.body) for p in parts] == [1, 1]


def test_interchange_rejects_scalar_destination():
    # A scalar destination (empty stride map) is a loop-carried
    # accumulation across every level; no reorder is legal.
    loops = [("i", 4), ("j", 8)]
    x = TRef(NS, 0, {"i": 8, "j": 1})
    acc = TRef(NS, 64, {})
    nest = Nest(loops, [_stmt(AluFunc.ADD, acc, acc, x)])
    assert not is_pointwise_parallel(nest)
    with pytest.raises(CompileError, match="dependence"):
        interchange(nest, [1, 0])


def test_fission_rejects_noninjective_forwarding():
    # Recipe temps often hold one value per point (stride 0 over the
    # loop). Point-major order forwards stmt1's value to stmt2 within
    # each point; instruction-major order leaves only the last point's
    # value in the temp, so fission must refuse.
    loops = [("c", 10)]
    x = TRef(NS, 0, {"c": 1})
    temp = TRef(NS, 32, {})         # shared per-point scratch
    out = TRef(NS, 64, {"c": 1})
    nest = Nest(loops, [_stmt(AluFunc.ADD, temp, x, x),
                        _stmt(AluFunc.MUL, out, temp, temp)])
    assert not fissionable(nest)
    with pytest.raises(CompileError, match="non-injective"):
        fission(nest)


def test_fission_allows_injective_forwarding():
    # The same producer/consumer chain through a temp that walks every
    # loop level injectively is safe: each point's value persists.
    loops = [("i", 4), ("j", 8)]
    x = TRef(NS, 0, {"i": 8, "j": 1})
    temp = TRef(NS, 32, {"i": 8, "j": 1})
    out = TRef(NS, 64, {"i": 8, "j": 1})
    nest = Nest(loops, [_stmt(AluFunc.ADD, temp, x, x),
                        _stmt(AluFunc.MUL, out, temp, temp)])
    parts = fission(nest)
    assert [len(p.body) for p in parts] == [1, 1]


def test_fission_preserves_cast_to():
    nest = _elementwise_nest()
    nest.cast_to = "int8"
    assert all(p.cast_to == "int8" for p in fission(nest))


def _run_nests(nests, init):
    """Execute nests on the machine; returns the whole IBUF1 contents."""
    machine = TandemMachine()
    machine.pads[NS].load_block(0, init)
    program = TandemProgram("t")
    for nest in nests:
        loop_vars = [v for v, _ in nest.loops]
        refs = {}
        idx = 0
        for stmt in nest.body:
            for ref in (stmt.dst, stmt.src1, stmt.src2):
                if ref is None or ref.key(loop_vars) in refs:
                    continue
                refs[ref.key(loop_vars)] = idx
                program.append(iterator_base(ref.ns, idx, ref.base))
                for var in loop_vars:
                    program.append(iterator_stride(ref.ns, idx,
                                                   ref.stride(var)))
                idx += 1
        for level, (_var, count) in enumerate(nest.loops):
            program.append(loop_iter(level, count))
        program.append(loop_num_inst(len(nest.body)))
        for stmt in nest.body:
            src2 = stmt.src2 if stmt.src2 is not None else stmt.src1
            program.append(alu(
                AluFunc(stmt.func),
                Operand(stmt.dst.ns, refs[stmt.dst.key(loop_vars)]),
                Operand(stmt.src1.ns, refs[stmt.src1.key(loop_vars)]),
                Operand(src2.ns, refs[src2.key(loop_vars)])))
    machine.run(program)
    return machine.pads[NS].store_block(0, init.size)


@pytest.fixture
def init_data(rng):
    return rng.integers(-50, 50, 96)


def test_interchange_preserves_results(init_data):
    nest = _elementwise_nest()
    base = _run_nests([nest], init_data)
    swapped = _run_nests([interchange(nest, [1, 0])], init_data)
    np.testing.assert_array_equal(base, swapped)


def test_fission_preserves_results(init_data):
    nest = _elementwise_nest()
    base = _run_nests([nest], init_data)
    split = _run_nests(fission(nest), init_data)
    np.testing.assert_array_equal(base, split)
