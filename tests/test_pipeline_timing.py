"""Loop-nest timing model: vectorization, reductions, overlays."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulator import BodyOpMeta, TandemParams, VpuOverlay, nest_timing
from repro.simulator.pipeline import nest_points

PARAMS = TandemParams()
BASE = VpuOverlay()


def _op(dst=1, srcs=(1, 1), reads=2):
    return BodyOpMeta(dst_inner_stride=dst, src_inner_strides=tuple(srcs),
                      mem_reads=reads, mem_writes=1)


def test_vectorized_elementwise():
    timing = nest_timing([1024], [_op()], PARAMS, BASE)
    assert timing.vector_issues == 1024 // 32
    assert timing.cycles == 32 + PARAMS.pipeline_depth
    assert timing.scalar_points == 1024


def test_partial_final_chunk_rounds_up():
    timing = nest_timing([33], [_op()], PARAMS, BASE)
    assert timing.vector_issues == 2


def test_outer_loops_multiply():
    timing = nest_timing([7, 64], [_op()], PARAMS, BASE)
    assert timing.vector_issues == 7 * 2


def test_non_unit_stride_serializes():
    strided = _op(dst=2, srcs=(1,), reads=1)
    timing = nest_timing([64], [strided], PARAMS, BASE)
    assert timing.vector_issues == 64  # lane-serial


def test_broadcast_stride_zero_still_vectorizes():
    op = _op(dst=1, srcs=(1, 0), reads=2)
    timing = nest_timing([64], [op], PARAMS, BASE)
    assert timing.vector_issues == 2


def test_lane_reduction_pays_tree():
    # dst fixed while src walks the inner loop: combine across lanes.
    reduce_op = _op(dst=0, srcs=(1,), reads=1)
    timing = nest_timing([4, 64], [reduce_op], PARAMS, BASE)
    assert timing.reduce_tree_cycles == 4 * int(math.log2(PARAMS.lanes))


def test_multi_instruction_body_scales():
    one = nest_timing([256], [_op()], PARAMS, BASE)
    three = nest_timing([256], [_op()] * 3, PARAMS, BASE)
    assert three.vector_issues == 3 * one.vector_issues


def test_spad_accesses_count_reads_and_writes():
    timing = nest_timing([10], [_op(reads=2)], PARAMS, BASE)
    assert timing.spad_accesses == 10 * 3


def test_regfile_overlay_adds_ldst_per_chunk():
    overlay = VpuOverlay(regfile_loads=True)
    base = nest_timing([1024], [_op()], PARAMS, BASE)
    with_rf = nest_timing([1024], [_op()], PARAMS, overlay)
    chunks = 1024 // 32
    assert with_rf.regfile_issues == chunks * 3  # 2 loads + 1 store
    assert with_rf.cycles == base.cycles + chunks * 3


def test_regfile_amortizes_over_long_bodies():
    """Figure 6a intuition: fused bodies keep intermediates in registers,
    so the relative LD/ST overhead shrinks with body length."""
    overlay = VpuOverlay(regfile_loads=True)
    short = nest_timing([1024], [_op()], PARAMS, overlay)
    long = nest_timing([1024], [_op()] * 10, PARAMS, overlay)
    rel_short = short.regfile_issues / short.vector_issues
    rel_long = long.regfile_issues / long.vector_issues
    assert rel_long < rel_short


def test_address_calc_overlay():
    overlay = VpuOverlay(explicit_address_calc=True)
    timing = nest_timing([640], [_op()], PARAMS, overlay)
    assert timing.addr_calc_issues == 3 * timing.vector_issues


def test_conventional_loop_overlay_charges_wraps():
    overlay = VpuOverlay(conventional_loops=True)
    flat = nest_timing([1024], [_op()], PARAMS, overlay)
    nested = nest_timing([4, 256], [_op()], PARAMS, overlay)
    assert flat.loop_branch_cycles == VpuOverlay.LOOP_BRANCH_INSTS * 32
    # Same total points but extra outer-level wrap bookkeeping.
    assert nested.loop_branch_cycles > flat.loop_branch_cycles


def test_empty_counts_defaults_to_one_point():
    timing = nest_timing([], [_op()], PARAMS, BASE)
    assert timing.scalar_points == 1


@given(st.lists(st.integers(1, 20), min_size=1, max_size=4))
def test_nest_points(counts):
    expected = 1
    for c in counts:
        expected *= c
    assert nest_points(counts) == expected


@given(st.lists(st.integers(1, 64), min_size=1, max_size=3),
       st.integers(1, 4))
def test_cycles_lower_bounded_by_issues(counts, body_len):
    timing = nest_timing(counts, [_op()] * body_len, PARAMS, BASE)
    assert timing.cycles >= timing.vector_issues
    assert timing.scalar_points == nest_points(counts) * body_len
