"""Per-operator bit-exactness: compiled machine run vs numpy reference.

This is the reproduction of the paper's simulator-validation methodology
(Section 7): every operator template is compiled to real Figure 12
instructions, executed by the detailed machine on integer tensors, and
must match the ground-truth executor exactly.
"""

import numpy as np
import pytest

from repro.compiler import ReferenceExecutor, compile_model
from repro.graph import GraphBuilder
from repro.npu import FunctionalRunner


def _run_and_compare(graph, bindings):
    model = compile_model(graph)
    runner = FunctionalRunner(model)
    runner.bind(bindings)
    outputs = runner.run({k: v for k, v in bindings.items()
                          if k in graph.graph_inputs})
    reference = ReferenceExecutor(graph).run(bindings)
    for name in graph.graph_outputs:
        np.testing.assert_array_equal(outputs[name], reference[name],
                                      err_msg=f"output {name}")
    return runner


def _unary_graph(op, shape, **attrs):
    b = GraphBuilder("t")
    x = b.input("x", shape, dtype="int32")
    y = getattr(b, op)(x, **attrs)
    return b.finish([y])


UNARY_CASES = [
    ("relu", {}, (-500, 500)),
    ("leaky_relu", {"alpha": 0.1}, (-500, 500)),
    ("clip", {"lo": -2.0, "hi": 2.0}, (-2000, 2000)),
    ("sigmoid", {}, (-1500, 1500)),
    ("tanh", {}, (-1000, 1000)),
    ("gelu", {}, (-1024, 1024)),
    ("erf", {}, (-800, 800)),
    ("exp", {}, (-2000, 0)),
    ("sqrt", {}, (1, 50000)),
    ("reciprocal", {}, (1, 4000)),
]


@pytest.mark.parametrize("op,attrs,value_range",
                         UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
def test_unary_operator_bit_exact(op, attrs, value_range, rng):
    graph = _unary_graph(op, (3, 41), **attrs)
    data = rng.integers(*value_range, (3, 41))
    _run_and_compare(graph, {"x": data})


@pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
def test_binary_operator_bit_exact(op, rng):
    b = GraphBuilder("t")
    x = b.input("x", (2, 5, 7), dtype="int32")
    y = b.input("y", (2, 5, 7), dtype="int32")
    z = getattr(b, op)(x, y)
    graph = b.finish([z])
    _run_and_compare(graph, {
        "x": rng.integers(-300, 300, (2, 5, 7)),
        "y": rng.integers(1, 300, (2, 5, 7)),
    })


def test_broadcast_add_channel_bias(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 6, 4, 4), dtype="int32")
    y = b.input("y", (1, 6, 1, 1), dtype="int32")
    graph = b.finish([b.add(x, y)])
    _run_and_compare(graph, {
        "x": rng.integers(-50, 50, (1, 6, 4, 4)),
        "y": rng.integers(-50, 50, (1, 6, 1, 1)),
    })


def test_softmax_rows(rng):
    graph = _unary_graph("softmax", (2, 6, 11), axis=-1)
    _run_and_compare(graph, {"x": rng.integers(-768, 768, (2, 6, 11))})


def test_reduce_mean_last_axis(rng):
    b = GraphBuilder("t")
    x = b.input("x", (3, 9, 15), dtype="int32")
    graph = b.finish([b.reduce_mean(x, axis=-1)])
    _run_and_compare(graph, {"x": rng.integers(-999, 999, (3, 9, 15))})


@pytest.mark.parametrize("kernel,stride,pad", [(2, 2, 0), (3, 2, 1), (3, 1, 1)])
def test_maxpool_configs(kernel, stride, pad, rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 5, 9, 9), dtype="int32")
    graph = b.finish([b.maxpool(x, kernel, stride, pad=pad)])
    _run_and_compare(graph, {"x": rng.integers(-200, 200, (1, 5, 9, 9))})


def test_avgpool(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 4, 8, 8), dtype="int32")
    graph = b.finish([b.avgpool(x, 2, 2)])
    _run_and_compare(graph, {"x": rng.integers(-100, 100, (1, 4, 8, 8))})


@pytest.mark.parametrize("kernel,stride", [(3, 1), (3, 2), (5, 1)])
def test_depthwise_conv(kernel, stride, rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 6, 11, 11), dtype="int32")
    y = b.depthwise_conv(x, kernel, stride=stride)
    graph = b.finish([y])
    weight = next(t for t in graph.tensors if t.startswith("w_dw"))
    _run_and_compare(graph, {
        "x": rng.integers(-40, 40, (1, 6, 11, 11)),
        weight: rng.integers(-8, 8, (6, 1, kernel, kernel)),
    })


def test_global_avgpool(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 10, 6, 6), dtype="int32")
    graph = b.finish([b.global_avgpool(x)])
    _run_and_compare(graph, {"x": rng.integers(-500, 500, (1, 10, 6, 6))})


@pytest.mark.parametrize("perm", [(0, 2, 3, 1), (0, 3, 1, 2), (1, 0, 2, 3)])
def test_transpose_perms(perm, rng):
    b = GraphBuilder("t")
    x = b.input("x", (2, 3, 4, 5), dtype="int32")
    graph = b.finish([b.transpose(x, perm)])
    _run_and_compare(graph, {"x": rng.integers(-99, 99, (2, 3, 4, 5))})


def test_chained_transpose_on_chip(rng):
    """Second transpose must go through the permute engine (resident)."""
    b = GraphBuilder("t")
    x = b.input("x", (2, 3, 4), dtype="int32")
    y = b.transpose(x, (2, 0, 1))
    z = b.transpose(y, (1, 2, 0))
    graph = b.finish([z])
    runner = _run_and_compare(graph, {"x": rng.integers(-99, 99, (2, 3, 4))})
    assert any(cb.tile and cb.tile.permutes for cb in runner.model.blocks)


def test_resize_nearest(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 3, 5, 5), dtype="int32")
    graph = b.finish([b.resize(x, 2)])
    _run_and_compare(graph, {"x": rng.integers(-99, 99, (1, 3, 5, 5))})


def test_concat_channels(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 2, 4, 4), dtype="int32")
    y = b.input("y", (1, 3, 4, 4), dtype="int32")
    graph = b.finish([b.concat([x, y], axis=1)])
    _run_and_compare(graph, {
        "x": rng.integers(-9, 9, (1, 2, 4, 4)),
        "y": rng.integers(-9, 9, (1, 3, 4, 4)),
    })


def test_cast_saturates_to_int8(rng):
    b = GraphBuilder("t")
    x = b.input("x", (4, 9), dtype="int32")
    graph = b.finish([b.cast(x, "int8")])
    _run_and_compare(graph, {"x": rng.integers(-1000, 1000, (4, 9))})


def test_where_and_comparison(rng):
    b = GraphBuilder("t")
    a = b.input("a", (3, 8), dtype="int32")
    c = b.input("c", (3, 8), dtype="int32")
    flag = b.emit("Greater", [a, c], (3, 8), "int32")
    out = b.emit("Where", [flag, a, c], (3, 8), "int32")
    graph = b.finish([out])
    _run_and_compare(graph, {
        "a": rng.integers(-50, 50, (3, 8)),
        "c": rng.integers(-50, 50, (3, 8)),
    })


def test_pow_square(rng):
    b = GraphBuilder("t")
    x = b.input("x", (5, 5), dtype="int32")
    two = b.param("c_two", (1,), "int32")
    y = b.emit("Pow", [x], (5, 5), "int32", {"exponent": 2.0}, [two])
    graph = b.finish([y])
    _run_and_compare(graph, {"x": rng.integers(-1000, 1000, (5, 5)),
                             "c_two": np.array([2])})


def test_fused_residual_block(rng):
    """GEMM + bundled non-GEMMs: exercise OBUF fluid ownership."""
    b = GraphBuilder("t")
    x = b.input("x", (1, 4, 6, 6), dtype="int8")
    y = b.relu(b.conv(x, 4, 3))
    z = b.add(y, y)
    graph = b.finish([z])
    bindings = {"x": rng.integers(-10, 10, (1, 4, 6, 6))}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is None and name != "x":
            bindings[name] = rng.integers(-3, 3, spec.shape)
    _run_and_compare(graph, bindings)


def test_slice_first_token(rng):
    b = GraphBuilder("t")
    x = b.input("x", (1, 8, 16), dtype="int32")
    y = b.relu(x)  # make it resident first
    s = b.emit("Slice", [y], (1, 1, 16), "int32", {"axis": 1, "start": 0})
    graph = b.finish([s])
    _run_and_compare(graph, {"x": rng.integers(-99, 99, (1, 8, 16))})
