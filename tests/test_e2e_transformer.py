"""End-to-end functional run of a miniature transformer encoder layer.

The hardest composite the compiler faces: batched activation x activation
matmuls, head split/merge transposes through the permute engine, scaled
masked softmax, the 9-node LayerNorm chain, and GeLU — all compiled to
Figure 12 instructions and executed bit-exactly on the machine.
"""

import numpy as np
import pytest

from repro.compiler import ReferenceExecutor, compile_model
from repro.graph import GraphBuilder
from repro.models.transformer import ffn, layer_norm, multi_head_attention
from repro.npu import FunctionalRunner


def _mini_encoder(seq=8, hidden=16, heads=2, intermediate=32):
    b = GraphBuilder("mini-encoder")
    x = b.input("x", (1, seq, hidden), dtype="int32")
    attn = multi_head_attention(b, x, seq, hidden, heads)
    x1 = layer_norm(b, b.add(x, attn), hidden)
    ff = ffn(b, x1, hidden, intermediate)
    out = layer_norm(b, b.add(x1, ff), hidden)
    return b.finish([out])


def _bindings(graph, rng):
    out = {}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is not None:
            continue
        if name.startswith("w_ln_gamma"):
            out[name] = np.full(spec.shape, 256)   # 1.0 in Q8
        elif name.startswith(("w_", "b_")):
            out[name] = rng.integers(-3, 3, spec.shape)
        elif name.startswith("c_attn_mask"):
            out[name] = np.zeros(spec.shape, dtype=int)
        elif name.startswith("c_"):
            out[name] = rng.integers(0, 3, spec.shape)
        else:
            out[name] = rng.integers(-40, 40, spec.shape)
    return out


@pytest.mark.parametrize("fast", [False, True], ids=["scalar", "fast"])
def test_mini_encoder_bit_exact(fast, rng):
    graph = _mini_encoder()
    bindings = _bindings(graph, rng)
    model = compile_model(graph)
    runner = FunctionalRunner(model, fast=fast)
    runner.bind(bindings)
    outputs = runner.run({"x": bindings["x"]})
    reference = ReferenceExecutor(graph).run(bindings)
    for name in graph.graph_outputs:
        np.testing.assert_array_equal(outputs[name], reference[name])


def test_mini_encoder_uses_every_mechanism(rng):
    """The compiled encoder exercises the permute engine, the OBUF
    handoff, immediates, and multi-level nests in one artifact."""
    graph = _mini_encoder()
    model = compile_model(graph)
    tiles = [cb.tile for cb in model.blocks if cb.tile is not None]
    assert any(t.permutes for t in tiles)
    assert any(t.imm_values for t in tiles)
    assert any(t.obuf_release_fraction < 1.0 for t in tiles)
    kinds = {cb.kind for cb in model.blocks}
    assert "gemm_tandem" in kinds
