"""Graph container: validation, topological order, census, cost model."""

import pytest

from repro.graph import Graph, GraphBuilder, GraphError, Node, OpClass, TensorSpec


def _mini_graph():
    b = GraphBuilder("mini")
    x = b.input("x", (1, 2, 4, 4))
    y = b.relu(b.conv(x, 4, 3))
    z = b.add(y, y)
    return b.finish([z])


def test_validate_passes_on_builder_output():
    graph = _mini_graph()
    graph.validate()


def test_topological_order_covers_all_nodes():
    graph = _mini_graph()
    order = graph.topological_order()
    assert len(order) == len(graph.nodes)
    seen = set(graph.graph_inputs)
    for node in order:
        for inp in node.inputs:
            assert inp in seen
        seen.update(node.outputs)


def test_duplicate_tensor_rejected():
    g = Graph("g")
    g.add_tensor(TensorSpec("t", (1,)))
    with pytest.raises(GraphError, match="already defined"):
        g.add_tensor(TensorSpec("t", (2,)))


def test_duplicate_producer_rejected():
    g = Graph("g")
    g.add_tensor(TensorSpec("a", (4,)))
    g.add_tensor(TensorSpec("b", (4,)))
    g.mark_input("a")
    g.add_node(Node("n1", "Relu", ["a"], ["b"]))
    with pytest.raises(GraphError, match="produced twice"):
        g.add_node(Node("n2", "Relu", ["a"], ["b"]))


def test_dangling_input_rejected():
    g = Graph("g")
    g.add_tensor(TensorSpec("a", (4,)))
    g.add_tensor(TensorSpec("b", (4,)))
    g.add_node(Node("n1", "Relu", ["a"], ["b"]))
    with pytest.raises(GraphError):
        g.validate()


def test_undefined_tensor_rejected():
    g = Graph("g")
    g.add_tensor(TensorSpec("a", (4,)))
    g.mark_input("a")
    g.add_node(Node("n1", "Relu", ["a"], ["missing"]))
    with pytest.raises(GraphError, match="undefined tensor"):
        g.validate()


def test_non_topological_insertion_rejected():
    g = Graph("g")
    for name in ("a", "b", "c"):
        g.add_tensor(TensorSpec(name, (4,)))
    g.mark_input("a")
    g.add_node(Node("n2", "Relu", ["b"], ["c"]))
    g.add_node(Node("n1", "Relu", ["a"], ["b"]))
    with pytest.raises(GraphError, match="not topological"):
        g.validate()


def test_producer_and_consumers():
    graph = _mini_graph()
    conv = graph.nodes[0]
    out = conv.outputs[0]
    assert graph.producer(out) is conv
    consumers = graph.consumers(out)
    assert [c.op_type for c in consumers] == ["Relu"]


def test_class_counts_and_gemm_fraction():
    graph = _mini_graph()
    counts = graph.class_counts()
    assert counts[OpClass.GEMM] == 1
    assert counts[OpClass.ACTIVATION] == 1
    assert 0 < graph.gemm_fraction() < 1


def test_conv_cost_counts_macs():
    graph = _mini_graph()
    conv = graph.nodes[0]
    cost = graph.node_cost(conv)
    out = graph.out_spec(conv)
    # 2 * OH*OW*OC * KH*KW*IC flops.
    assert cost.flops == 2 * out.numel * 9 * 2
    assert cost.bytes_out == out.nbytes


def test_layout_ops_are_zero_flop():
    b = GraphBuilder("t")
    x = b.input("x", (1, 2, 4, 4), dtype="int32")
    y = b.transpose(x, (0, 2, 3, 1))
    g = b.finish([y])
    assert g.node_cost(g.nodes[0]).flops == 0


def test_gather_cost_does_not_count_whole_table():
    b = GraphBuilder("t")
    tokens = b.input("tok", (1, 8), dtype="int32")
    table = b.param("w_embed", (30522, 64), "int32")
    out = b.emit("Gather", [tokens], (1, 8, 64), "int32", {}, [table])
    g = b.finish([out])
    cost = g.node_cost(g.nodes[0])
    # Only the gathered rows are streamed, not the 30522-row table.
    assert cost.bytes_in < 2 * cost.bytes_out + 64


def test_total_cost_sums_nodes():
    graph = _mini_graph()
    total = graph.total_cost()
    per_node = sum(graph.node_cost(n).flops for n in graph.nodes)
    assert total.flops == per_node


def test_arithmetic_intensity():
    graph = _mini_graph()
    add = graph.nodes[-1]
    cost = graph.node_cost(add)
    assert cost.arithmetic_intensity == pytest.approx(
        cost.flops / cost.bytes_total)
