"""End-to-end functional validation on small networks (Section 7 flow)."""

import numpy as np
import pytest

from repro.analysis.verifier import verify_model
from repro.compiler import ReferenceExecutor, compile_model
from repro.graph import GraphBuilder
from repro.models import build_tinynet
from repro.npu import FunctionalRunner
from repro.runtime import seeded_rng


def _bindings(graph, rng, weight_hi=4, act_hi=20, bias_hi=50):
    out = {}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is None:
            if name.startswith("w_"):
                hi = weight_hi
            elif name.startswith("b_"):
                hi = bias_hi
            else:
                hi = act_hi
            out[name] = rng.integers(-hi, hi, spec.shape)
    return out


def _check(graph, bindings):
    model = compile_model(graph)
    # Every lowered program must pass static verification before it runs.
    report = verify_model(model)
    assert report.errors == 0, report.to_json()
    runner = FunctionalRunner(model)
    runner.bind(bindings)
    outputs = runner.run({k: v for k, v in bindings.items()
                          if k in graph.graph_inputs})
    reference = ReferenceExecutor(graph).run(bindings)
    for name in graph.graph_outputs:
        np.testing.assert_array_equal(outputs[name], reference[name])
    return model, runner


def test_tinynet_end_to_end(rng):
    graph = build_tinynet()
    model, runner = _check(graph, _bindings(graph, rng))
    kinds = [cb.kind for cb in model.blocks]
    assert "gemm_tandem" in kinds
    merged = runner.total_machine_result()
    assert merged.cycles > 0
    assert merged.instructions_decoded == sum(
        len(cb.tile.program) for cb in model.blocks if cb.tile)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_tinynet_multiple_seeds(seed):
    rng = seeded_rng("e2e", seed)
    graph = build_tinynet()
    _check(graph, _bindings(graph, rng))


def test_mini_mobilenet_block(rng):
    """expand conv -> clip -> depthwise -> clip -> project -> resadd."""
    b = GraphBuilder("mini-mbv2")
    x = b.input("x", (1, 4, 8, 8), dtype="int8")
    skip = b.conv(x, 4, 1, pad=0)
    y = b.clip(b.conv(x, 8, 1, pad=0), 0, 6)
    y = b.clip(b.depthwise_conv(y, 3), 0, 6)
    y = b.conv(y, 4, 1, pad=0)
    out = b.add(y, skip)
    graph = b.finish([out])
    _check(graph, _bindings(graph, rng, act_hi=8, weight_hi=3))


def test_mini_attention(rng):
    """Scores matmul -> scale -> softmax -> context matmul."""
    b = GraphBuilder("mini-attn")
    q = b.input("q", (1, 2, 6, 4), dtype="int8")
    k = b.input("k", (1, 2, 4, 6), dtype="int8")
    v = b.input("v", (1, 2, 6, 4), dtype="int8")
    scores = b.matmul(q, k)
    probs = b.softmax(scores, axis=-1)
    ctx = b.matmul(probs, v)
    graph = b.finish([ctx])
    _check(graph, _bindings(graph, rng, act_hi=6))


def test_mini_layernorm_chain(rng):
    """The decomposed LayerNorm pattern of the transformer models."""
    b = GraphBuilder("mini-ln")
    x = b.input("x", (1, 6, 16), dtype="int32")
    mean = b.reduce_mean(x, axis=-1)
    centered = b.sub(x, mean)
    two = b.param("c_two", (1,), "int32")
    sq = b.emit("Pow", [centered], (1, 6, 16), "int32",
                {"exponent": 2.0}, [two])
    var = b.reduce_mean(sq, axis=-1)
    std = b.sqrt(var)
    out = b.div(centered, std)
    graph = b.finish([out])
    bindings = _bindings(graph, rng, act_hi=200)
    bindings["c_two"] = np.array([2])
    _check(graph, bindings)


def test_functional_runner_rejects_tiled_models(rng):
    """Functional execution needs single-tile compilations."""
    b = GraphBuilder("big")
    # Big enough to force tiling of the fused block.
    x = b.input("x", (1, 64, 64, 64), dtype="int8")
    y = b.relu(b.conv(x, 64, 3))
    graph = b.finish([y])
    model = compile_model(graph)
    assert any(cb.tiles > 1 for cb in model.blocks)
    with pytest.raises(ValueError, match="single-tile"):
        FunctionalRunner(model)


def test_dram_traffic_matches_casts(rng):
    """Block outputs cast to int8 are stored narrow (1 byte/element)."""
    graph = build_tinynet()
    model, runner = _check(graph, _bindings(graph, rng))
    st_bytes = {
        (slot.tensor, slot.element_bytes)
        for cb in model.blocks if cb.tile
        for slot in cb.tile.transfers if slot.direction == "st"
    }
    assert any(nbytes == 1 for _t, nbytes in st_bytes)
