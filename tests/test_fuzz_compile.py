"""Property-based fuzzing: random graphs compile and run bit-exactly.

Hypothesis builds random small DAGs from the non-GEMM operator pool,
compiles them, executes the instruction streams on the detailed machine,
and requires bit-exact agreement with the reference executor — the
strongest whole-stack invariant the library has.

Value tensors come from ``seeded_rng(REPRO_SEED, "fuzz", drawn seed)``:
hypothesis controls the structural choices, while the single
``REPRO_SEED`` environment variable pins the data, so any failure
replays exactly from the printed example plus the seed.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verifier import verify_model
from repro.compiler import ReferenceExecutor, compile_model
from repro.graph import GraphBuilder
from repro.npu import FunctionalRunner
from repro.runtime import seeded_rng

#: (method name, needs second operand, input value range)
_UNARY_POOL = [
    ("relu", (-300, 300)),
    ("clip", (-900, 900)),
    ("gelu", (-800, 800)),
    ("sigmoid", (-700, 700)),
    ("tanh", (-700, 700)),
    ("leaky_relu", (-300, 300)),
    ("softmax", (-500, 500)),
]
_BINARY_POOL = ["add", "sub", "mul", "max", "min"]


@st.composite
def random_pipelines(draw):
    """A random chain of elementwise/reduction ops with optional skips."""
    rows = draw(st.integers(2, 5))
    cols = draw(st.integers(3, 17))
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("unary"),
                      st.sampled_from(range(len(_UNARY_POOL)))),
            st.tuples(st.just("binary"), st.sampled_from(_BINARY_POOL)),
        ),
        min_size=1, max_size=5))
    seed = draw(st.integers(0, 2 ** 16))
    return rows, cols, ops, seed


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_pipelines())
def test_random_pipeline_bit_exact(case):
    rows, cols, ops, seed = case
    rng = seeded_rng("fuzz", seed)
    b = GraphBuilder("fuzz")
    x = b.input("x", (rows, cols), dtype="int32")
    value_lo, value_hi = -300, 300
    current = x
    previous = x
    for kind, op in ops:
        if kind == "unary":
            name, _rng = _UNARY_POOL[op]
            previous, current = current, getattr(b, name)(current)
        elif op in ("max", "min"):
            out = b.emit(op.capitalize(), [current, previous], (rows, cols))
            previous, current = current, out
        else:
            previous, current = current, getattr(b, op)(current, previous)
    graph = b.finish([current])

    data = rng.integers(value_lo, value_hi, (rows, cols))
    reference = ReferenceExecutor(graph).run({"x": data})
    model = compile_model(graph)
    # Every randomly generated lowering must survive static verification.
    assert verify_model(model).errors == 0
    # Both execution modes (point-major scalar and instruction-major
    # vectorized) must match the reference bit-for-bit.
    for fast in (False, True):
        runner = FunctionalRunner(model, fast=fast)
        outputs = runner.run({"x": data})
        np.testing.assert_array_equal(outputs[graph.graph_outputs[0]],
                                      reference[graph.graph_outputs[0]],
                                      err_msg=f"fast={fast}")


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 4), st.integers(4, 10), st.integers(0, 2 ** 16))
def test_random_conv_block_bit_exact(channels, size, seed):
    """Random conv -> relu -> residual add blocks stay exact."""
    rng = seeded_rng("fuzz", seed)
    b = GraphBuilder("fuzz-conv")
    x = b.input("x", (1, channels, size, size), dtype="int8")
    y = b.relu(b.conv(x, channels, 3))
    z = b.add(y, y)
    graph = b.finish([z])
    bindings = {}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is None:
            hi = 3 if name.startswith(("w_", "b_")) else 10
            bindings[name] = rng.integers(-hi, hi, spec.shape)
    model = compile_model(graph)
    runner = FunctionalRunner(model)
    runner.bind(bindings)
    outputs = runner.run({"x": bindings["x"]})
    reference = ReferenceExecutor(graph).run(bindings)
    np.testing.assert_array_equal(outputs[graph.graph_outputs[0]],
                                  reference[graph.graph_outputs[0]])


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(4, 24), st.integers(0, 2 ** 16),
       st.booleans())
def test_random_reduction_chain_bit_exact(rows, cols, seed, end_softmax):
    """Reduction-into-broadcast chains exercise the widened fast path:
    streamed recipe temporaries plus accumulators with trailing
    consumers must stay bit-exact in both execution modes."""
    rng = seeded_rng("fuzz", seed)
    b = GraphBuilder("fuzz-red")
    x = b.input("x", (rows, cols), dtype="int32")
    mean = b.reduce_mean(x, axis=-1, keepdims=True)
    centered = b.sub(x, mean)
    out = b.softmax(centered) if end_softmax else centered
    graph = b.finish([out])
    data = rng.integers(-400, 400, (rows, cols))
    reference = ReferenceExecutor(graph).run({"x": data})
    for fast in (False, True):
        runner = FunctionalRunner(compile_model(graph), fast=fast)
        outputs = runner.run({"x": data})
        np.testing.assert_array_equal(outputs[graph.graph_outputs[0]],
                                      reference[graph.graph_outputs[0]],
                                      err_msg=f"fast={fast}")


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(1, 8), min_size=2, max_size=4),
       st.integers(0, 2 ** 16))
def test_random_transpose_chain_bit_exact(shape, seed):
    rng = seeded_rng("fuzz", seed)
    perm = list(rng.permutation(len(shape)))
    b = GraphBuilder("fuzz-perm")
    x = b.input("x", tuple(shape), dtype="int32")
    y = b.transpose(x, perm)
    graph = b.finish([y])
    data = rng.integers(-99, 99, tuple(shape))
    runner = FunctionalRunner(compile_model(graph))
    outputs = runner.run({"x": data})
    np.testing.assert_array_equal(outputs[graph.graph_outputs[0]],
                                  data.transpose(perm))
