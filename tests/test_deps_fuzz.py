"""IR-mutation fuzzing of the dependence/race analyses.

Two properties the analyses must hold simultaneously:

* **zero false positives** — every model in the zoo and every LLM
  decode-step program verifies clean under strict deps mode, and the
  dynamic oracle agrees;
* **high seeded-catch rate** — random perturbations of the compiler's
  access claims (strides, bases, counts, transfer bindings) and of the
  DAE transfer queue (undefined loads, overlapping/out-of-bounds
  in-place appends) are flagged at a ≥95% rate, with slot-level
  mutations also tripping the oracle (static/dynamic agreement on
  seeded races, not just on clean programs).

All randomness flows from :func:`repro.runtime.seeded_rng`, so the
sampled mutation set replays exactly under one ``REPRO_SEED``.
"""

import copy
import dataclasses

import pytest

from repro.analysis.deps import check_model, run_oracle, validate_tile
from repro.analysis.verifier import interpret, verify_model
from repro.compiler import compile_model
from repro.llm import available_llm_configs, build_step, get_llm_config
from repro.models import available_models, build_model
from repro.runtime import seeded_rng


def _compile(name):
    return compile_model(build_model(name), verify=False)


def _compile_decode(config):
    step = build_step(get_llm_config(config), past_len=4, n_new=1)
    return compile_model(step.graph, verify=False)


# ---------------------------------------------------------------------------
# Zero false positives: zoo + decode, static and dynamic
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", available_models())
def test_zoo_model_is_clean_under_strict_deps(name):
    model = _compile(name)
    report = verify_model(model, deps="strict")
    assert report.errors == 0, report.render()
    verdict = run_oracle(model)
    assert verdict.clean, verdict.hazards


@pytest.mark.parametrize("config", available_llm_configs())
def test_decode_step_is_clean_under_strict_deps(config):
    model = _compile_decode(config)
    report = verify_model(model, deps="strict")
    assert report.errors == 0, report.render()
    verdict = run_oracle(model)
    assert verdict.clean, verdict.hazards


# ---------------------------------------------------------------------------
# Seeded claim mutations (translation validation must catch them)
# ---------------------------------------------------------------------------
def _meta_mutation_sites(model):
    """(block index, mutator) pairs, one per perturbable claim leaf."""
    sites = []
    for b, cb in enumerate(model.blocks):
        if cb.tile is None or cb.tile.access_meta is None:
            continue
        meta = cb.tile.access_meta.to_dict()
        for n, nest in enumerate(meta["nests"]):
            for lvl in range(len(nest["counts"])):
                sites.append((b, ("count", n, lvl)))
            for s, stmt in enumerate(nest["stmts"]):
                for o in range(len(stmt)):
                    sites.append((b, ("base", n, s, o)))
                    for lvl in range(len(stmt[o][3])):
                        sites.append((b, ("stride", n, s, o, lvl)))
        for t in range(len(meta["transfers"])):
            sites.append((b, ("xfer-base", t)))
            sites.append((b, ("xfer-elements", t)))
            sites.append((b, ("xfer-direction", t)))
        for p in range(len(meta["permutes"])):
            sites.append((b, ("perm-base", p)))
    return sites


def _apply_meta_mutation(model, block, op, delta):
    tile = model.blocks[block].tile
    meta = tile.access_meta.to_dict()
    kind = op[0]
    if kind == "count":
        _, n, lvl = op
        meta["nests"][n]["counts"][lvl] += delta
    elif kind == "base":
        _, n, s, o = op
        meta["nests"][n]["stmts"][s][o][2] += delta
    elif kind == "stride":
        _, n, s, o, lvl = op
        meta["nests"][n]["stmts"][s][o][3][lvl] += delta
    elif kind == "xfer-base":
        meta["transfers"][op[1]]["base"] += delta
    elif kind == "xfer-elements":
        meta["transfers"][op[1]]["elements"] += delta
    elif kind == "xfer-direction":
        xfer = meta["transfers"][op[1]]
        xfer["direction"] = "st" if xfer["direction"] == "ld" else "ld"
    elif kind == "perm-base":
        meta["permutes"][op[1]]["src_base"] += delta
    tile.access_meta = type(tile.access_meta).from_dict(meta)
    return tile


def test_seeded_claim_mutations_are_caught():
    rng = seeded_rng("deps-fuzz", "claims")
    base = _compile("tinynet")
    sites = _meta_mutation_sites(base)
    assert sites
    picks = rng.choice(len(sites), size=min(40, len(sites)), replace=False)
    caught = 0
    for pick in picks:
        block, op = sites[int(pick)]
        model = copy.deepcopy(base)
        delta = int(rng.integers(1, 5))
        tile = _apply_meta_mutation(model, block, op, delta)
        findings = validate_tile(tile, interpret(tile.program))
        caught += bool(findings)
    rate = caught / len(picks)
    assert rate >= 0.95, f"caught {caught}/{len(picks)} claim mutations"


# ---------------------------------------------------------------------------
# Seeded race mutations (races + oracle must agree)
# ---------------------------------------------------------------------------
def _race_mutations(model):
    """Named mutators over a deepcopy of ``model``; each seeds one race."""
    from repro.analysis.deps.races import alias_roots

    mutations = []
    graph = model.graph
    roots = alias_roots(graph)

    def root(name):
        return roots.get(name, name)

    # Replay the checker's definedness frontier so every seeded
    # undefined-read retargets to storage genuinely not yet
    # materialized at that block (a load of an append output, say, is
    # *defined* — its root is the graph-input cache — and must not be
    # sampled as a mutation).
    defined = {root(name) for name in graph.graph_inputs}
    for node in graph.nodes:
        defined.update(root(p) for p in node.params)
    defined_at = []
    for cb in model.blocks:
        defined_at.append(set(defined))
        if cb.block.gemm is not None:
            defined.add(root(cb.block.gemm.outputs[0]))
        if cb.tile is not None:
            defined.update(root(s.tensor) for s in cb.tile.transfers
                           if s.direction == "st")

    def undef_targets(b):
        local = {root(out) for node in model.blocks[b].block.nodes
                 for out in node.outputs}
        names = []
        for cb in model.blocks[b + 1:]:
            if cb.tile is None:
                continue
            names.extend(
                s.tensor for s in cb.tile.transfers
                if s.direction == "st"
                and root(s.tensor) not in defined_at[b]
                and root(s.tensor) not in local)
        return names

    for b, cb in enumerate(model.blocks):
        if cb.tile is None:
            continue
        for i, slot in enumerate(cb.tile.transfers):
            if slot.direction == "ld":
                for target in undef_targets(b):
                    def undef(m, b=b, i=i, target=target):
                        tile = m.blocks[b].tile
                        tile.transfers[i] = dataclasses.replace(
                            tile.transfers[i], tensor=target)
                    mutations.append((f"undef-read b{b} t{i} {target}",
                                      undef))
            if slot.direction == "st" and slot.region is not None:
                def dup(m, b=b, i=i):
                    tile = m.blocks[b].tile
                    tile.transfers.append(
                        dataclasses.replace(tile.transfers[i]))
                mutations.append((f"dup-append b{b} t{i}", dup))

                def oob(m, b=b, i=i):
                    tile = m.blocks[b].tile
                    slot = tile.transfers[i]
                    shape = m.graph.tensor(slot.tensor).shape
                    region = list(slot.region)
                    start, _stop = region[0]
                    region[0] = (start, shape[0] + 3)
                    tile.transfers[i] = dataclasses.replace(
                        slot, region=tuple(region))
                mutations.append((f"oob-append b{b} t{i}", oob))
    return mutations


def test_seeded_race_mutations_are_caught_by_static_and_oracle():
    rng = seeded_rng("deps-fuzz", "races")
    pool = []
    tinynet = _compile("tinynet")
    decode = _compile_decode("tinyllm")
    pool.extend((tinynet, name, fn) for name, fn in _race_mutations(tinynet))
    pool.extend((decode, name, fn) for name, fn in _race_mutations(decode))
    assert pool
    picks = rng.choice(len(pool), size=min(16, len(pool)), replace=False)
    static_caught = oracle_caught = 0
    for pick in picks:
        base, _name, mutate = pool[int(pick)]
        model = copy.deepcopy(base)
        mutate(model)
        static_caught += bool(check_model(model))
        oracle_caught += not run_oracle(model).clean
    assert static_caught / len(picks) >= 0.95, \
        f"static caught {static_caught}/{len(picks)}"
    # Agreement on seeded races, not just on clean programs.
    assert oracle_caught == static_caught, \
        f"oracle caught {oracle_caught}, static {static_caught}"
