"""Static verifier: every rule has a negative test, clean programs pass.

Programs here are hand-built from the ISA builder helpers so each test
triggers exactly one rule; zoo-wide positive coverage (every compiled
model verifies clean) lives in test_compile_all_models.py.
"""

import dataclasses
import json

import pytest

from repro.analysis.verifier import (
    Severity,
    VerificationError,
    verify_blob,
    verify_model,
    verify_program,
    verify_words,
)
from repro.compiler import compile_model, verify_record_for
from repro.isa import (
    AluFunc,
    Instruction,
    LdStFunc,
    Namespace,
    Opcode,
    Operand,
    ProgramDecodeError,
    SyncFunc,
    TandemProgram,
    alu,
    iterator_base,
    iterator_stride,
    loop_iter,
    loop_num_inst,
    set_immediate,
    sync,
    tile_ldst,
)
from repro.models import build_tinynet
from repro.runtime import get_cache
from repro.simulator.params import TandemParams


def _entry(ns, idx, base, *strides):
    yield iterator_base(ns, idx, base)
    for stride in strides:
        yield iterator_stride(ns, idx, stride)


def _program(*insts, name="prog"):
    program = TandemProgram(name)
    for inst in insts:
        if isinstance(inst, Instruction):
            program.append(inst)
        else:
            program.extend(inst)
    return program


def clean_program():
    """8-point add with a DAE store draining the result: zero findings."""
    return _program(
        sync(SyncFunc.SIMD_START_EXEC),
        _entry(Namespace.IBUF1, 0, 0, 1),
        _entry(Namespace.IBUF1, 1, 16, 1),
        _entry(Namespace.IBUF2, 0, 0, 1),
        loop_iter(0, 8),
        loop_num_inst(1),
        alu(AluFunc.ADD, Operand(Namespace.IBUF2, 0),
            Operand(Namespace.IBUF1, 0), Operand(Namespace.IBUF1, 1)),
        tile_ldst(LdStFunc.ST_CONFIG_BASE_ADDR, Namespace.IBUF2, imm=0),
        tile_ldst(LdStFunc.ST_CONFIG_BASE_LOOP_ITER, loop_idx=0, imm=8),
        tile_ldst(LdStFunc.ST_START),
        sync(SyncFunc.SIMD_END_EXEC),
    )


def rules_of(report, min_severity=Severity.INFO):
    return {f.rule for f in report.findings if f.severity >= min_severity}


# ---------------------------------------------------------------------------
# Positive: clean programs and reports
# ---------------------------------------------------------------------------
def test_clean_program_has_zero_findings():
    report = verify_program(clean_program())
    assert report.findings == []
    assert report.clean
    assert report.passes == ["decode", "loops", "dataflow", "ownership",
                             "lint"]
    assert "clean" in report.render()


def test_report_as_dict_shape():
    report = verify_program(clean_program())
    payload = report.as_dict()
    assert payload["errors"] == 0
    assert payload["program"] == "prog"
    assert payload["instructions"] == len(clean_program().instructions)
    json.dumps(payload)  # JSON-able


# ---------------------------------------------------------------------------
# decode pass
# ---------------------------------------------------------------------------
def test_unencodable_word_flagged():
    bad = Instruction(Opcode.SYNC, 0, imm=1 << 17)  # imm16 overflow
    report = verify_program(_program(bad))
    assert "unencodable-word" in rules_of(report, Severity.ERROR)


def test_illegal_func_flagged():
    bad = Instruction(Opcode.LOOP, 0xF)  # LoopFunc has no 0xF
    report = verify_program(_program(bad))
    assert "illegal-func" in rules_of(report, Severity.ERROR)


def test_roundtrip_mismatch_flagged():
    class EvilInst:
        opcode = Opcode.SYNC
        func = int(SyncFunc.SIMD_START_EXEC)
        imm = 0

        def pack(self):
            return 0xF0000000  # packs to an illegal opcode nibble

    report = verify_program(TandemProgram("evil", [EvilInst()]))
    assert "roundtrip-mismatch" in rules_of(report, Severity.ERROR)


def test_illegal_namespace_in_iterator_config():
    bad = Instruction(Opcode.ITERATOR_CONFIG, 0, field3=6, field5=0, imm=0)
    report = verify_program(_program(bad))
    assert "illegal-namespace" in rules_of(report, Severity.ERROR)


def test_illegal_namespace_in_dae_config():
    bad = Instruction(Opcode.TILE_LD_ST,
                      int(LdStFunc.LD_CONFIG_BASE_ADDR), field3=7)
    report = verify_program(_program(bad))
    assert "illegal-namespace" in rules_of(report, Severity.ERROR)


def test_undecodable_word_in_word_stream():
    report = verify_words("blob", [sync(SyncFunc.SIMD_START_EXEC).pack(),
                                   0xFFFFFFFF])
    assert "undecodable-word" in rules_of(report, Severity.ERROR)
    assert report.passes == ["decode"]  # semantic passes need all words


def test_blob_with_trailing_bytes():
    blob = clean_program().to_bytes() + b"\x01\x02"
    report = verify_blob("prog", blob)
    assert "undecodable-word" in rules_of(report, Severity.ERROR)
    assert verify_blob("prog", clean_program().to_bytes()).clean


# ---------------------------------------------------------------------------
# loop-table pass
# ---------------------------------------------------------------------------
def _nest(levels, body=None):
    insts = list(_entry(Namespace.IBUF1, 0, 0, *([1] * levels)))
    insts += [loop_iter(l, 2) for l in range(levels)]
    insts += [loop_num_inst(1),
              body or alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
                          Operand(Namespace.IBUF1, 0))]
    return insts


def test_loop_depth_limit():
    report = verify_program(_program(*_nest(9)))
    assert "loop-depth" in rules_of(report, Severity.ERROR)
    assert "loop-depth" not in rules_of(verify_program(_program(*_nest(8))),
                                        Severity.ERROR)


def test_nonpositive_trip_count():
    report = verify_program(_program(
        _entry(Namespace.IBUF1, 0, 0, 1), loop_iter(0, 0), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0))))
    assert "loop-trip-nonpositive" in rules_of(report, Severity.ERROR)


def test_nonpositive_body_size():
    report = verify_program(_program(loop_iter(0, 4), loop_num_inst(0)))
    assert "loop-body-nonpositive" in rules_of(report, Severity.ERROR)


def test_body_overruns_program():
    report = verify_program(_program(
        _entry(Namespace.IBUF1, 0, 0, 1), loop_iter(0, 4), loop_num_inst(3),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0))))
    assert "loop-body-overrun" in rules_of(report, Severity.ERROR)


def test_noncompute_word_inside_body():
    report = verify_program(_program(
        _entry(Namespace.IBUF1, 0, 0, 1), loop_iter(0, 4), loop_num_inst(2),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0)),
        sync(SyncFunc.SIMD_END_EXEC)))
    assert "loop-body-noncompute" in rules_of(report, Severity.ERROR)


def test_overlapping_repeater_bodies():
    report = verify_program(_program(
        _entry(Namespace.IBUF1, 0, 0, 1), loop_iter(0, 4), loop_num_inst(2),
        loop_num_inst(1),  # a LOOP word claimed by the outer body
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0))))
    assert "loop-body-overlap" in rules_of(report, Severity.ERROR)


def test_orphan_loop_config_warns():
    report = verify_program(_program(loop_iter(0, 4)))
    assert "loop-orphan-config" in rules_of(report, Severity.WARN)
    assert report.clean  # warn tier only


# ---------------------------------------------------------------------------
# dataflow pass
# ---------------------------------------------------------------------------
def test_unconfigured_iterator_entry():
    report = verify_program(_program(
        loop_iter(0, 4), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 3),
            Operand(Namespace.IBUF1, 3))))
    assert "iter-unconfigured" in rules_of(report, Severity.ERROR)


def test_oob_positive_stride():
    params = TandemParams()
    count = params.interim_buf_words  # stride 1 over cap+... walks past end
    report = verify_program(_program(
        _entry(Namespace.IBUF1, 0, 1, 1), loop_iter(0, count),
        loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0))))
    assert "oob-access" in rules_of(report, Severity.ERROR)


def test_oob_negative_stride():
    report = verify_program(_program(
        _entry(Namespace.IBUF1, 0, 2, -1), loop_iter(0, 8), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0))))
    assert "oob-access" in rules_of(report, Severity.ERROR)


def test_oob_immediate_slot():
    report = verify_program(_program(
        _entry(Namespace.IMM, 0, 40, 0),  # only 32 IMM slots
        _entry(Namespace.IBUF1, 0, 0, 1),
        loop_iter(0, 4), loop_num_inst(1),
        alu(AluFunc.ADD, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0), Operand(Namespace.IMM, 0))))
    assert "oob-access" in rules_of(report, Severity.ERROR)


def test_iter_index_capacity():
    params = dataclasses.replace(TandemParams(), iter_table_entries=4)
    report = verify_program(_program(
        _entry(Namespace.IBUF1, 9, 0, 1), loop_iter(0, 2), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 9),
            Operand(Namespace.IBUF1, 9))), params)
    assert "iter-index-capacity" in rules_of(report, Severity.ERROR)


def test_stride_count_mismatch_warns():
    report = verify_program(_program(
        _entry(Namespace.IBUF1, 0, 0, 1),  # one stride level, two loops
        loop_iter(0, 2), loop_iter(1, 3), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0))))
    assert "stride-count-mismatch" in rules_of(report, Severity.WARN)
    assert report.clean


# ---------------------------------------------------------------------------
# ownership pass
# ---------------------------------------------------------------------------
def _obuf_read(release=False, after=()):
    insts = [sync(SyncFunc.SIMD_START_EXEC),
             *_entry(Namespace.OBUF, 0, 0, 1),
             *_entry(Namespace.IBUF1, 0, 0, 1),
             loop_iter(0, 8), loop_num_inst(1),
             alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
                 Operand(Namespace.OBUF, 0))]
    if release:
        insts.append(sync(SyncFunc.SIMD_END_BUF))
    insts.extend(after)
    insts.append(sync(SyncFunc.SIMD_END_EXEC))
    return _program(*insts)


def test_obuf_read_without_handoff():
    report = verify_program(_obuf_read(release=True), owns_obuf=False)
    assert "obuf-read-before-ownership" in rules_of(report, Severity.ERROR)
    # The same program is legal when the block owns the buffer.
    assert verify_program(_obuf_read(release=True), owns_obuf=True).clean


def test_obuf_write_race_without_ownership():
    program = _program(
        _entry(Namespace.OBUF, 0, 0, 1), _entry(Namespace.IBUF1, 0, 0, 1),
        loop_iter(0, 4), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.OBUF, 0),
            Operand(Namespace.IBUF1, 0)))
    report = verify_program(program, owns_obuf=False)
    assert "obuf-write-race" in rules_of(report, Severity.ERROR)


def test_obuf_access_after_release():
    after = [loop_iter(0, 8), loop_num_inst(1),
             alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
                 Operand(Namespace.OBUF, 0))]
    report = verify_program(_obuf_read(release=True, after=after),
                            owns_obuf=True)
    assert "obuf-access-after-release" in rules_of(report, Severity.ERROR)


def test_obuf_write_after_release_races_next_layer():
    after = [loop_iter(0, 8), loop_num_inst(1),
             alu(AluFunc.MOVE, Operand(Namespace.OBUF, 0),
                 Operand(Namespace.IBUF1, 0))]
    report = verify_program(_obuf_read(release=True, after=after),
                            owns_obuf=True)
    assert "obuf-write-race" in rules_of(report, Severity.ERROR)


def test_obuf_double_release():
    report = verify_program(
        _obuf_read(release=True, after=[sync(SyncFunc.SIMD_END_BUF)]),
        owns_obuf=True)
    assert "obuf-double-release" in rules_of(report, Severity.ERROR)


def test_obuf_release_without_ownership_warns():
    program = _program(sync(SyncFunc.SIMD_START_EXEC),
                       sync(SyncFunc.SIMD_END_BUF),
                       sync(SyncFunc.SIMD_END_EXEC))
    report = verify_program(program, owns_obuf=False)
    assert "obuf-release-without-ownership" in rules_of(report, Severity.WARN)
    assert report.clean


def test_obuf_never_released_warns():
    report = verify_program(_obuf_read(release=False), owns_obuf=True)
    assert "obuf-never-released" in rules_of(report, Severity.WARN)
    assert report.clean


# ---------------------------------------------------------------------------
# lint pass
# ---------------------------------------------------------------------------
def test_dead_store_detected_and_kept_alive_by_store():
    dead = _program(
        _entry(Namespace.IBUF1, 0, 0, 1), _entry(Namespace.IBUF2, 0, 0, 1),
        loop_iter(0, 8), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF2, 0),
            Operand(Namespace.IBUF1, 0)))
    assert "dead-store" in rules_of(verify_program(dead))
    assert "dead-store" not in rules_of(verify_program(clean_program()))


def test_imm_read_without_value_write():
    program = _program(
        _entry(Namespace.IMM, 0, 3, 0),  # slot 3 never written
        _entry(Namespace.IBUF1, 0, 0, 1),
        loop_iter(0, 4), loop_num_inst(1),
        alu(AluFunc.ADD, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0), Operand(Namespace.IMM, 0)))
    assert "imm-unconfigured" in rules_of(verify_program(program),
                                          Severity.WARN)
    configured = _program(set_immediate(3, 7), *program.instructions)
    assert "imm-unconfigured" not in rules_of(verify_program(configured))


def test_unused_iterator_entry():
    program = _program(
        _entry(Namespace.IBUF2, 5, 0, 1),  # never referenced
        _entry(Namespace.IBUF1, 0, 0, 1),
        loop_iter(0, 4), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0)))
    assert "iter-unused" in rules_of(verify_program(program))


def test_sync_protocol_warns_without_markers():
    program = _program(
        _entry(Namespace.IBUF1, 0, 0, 1), loop_iter(0, 4), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 0),
            Operand(Namespace.IBUF1, 0)))
    assert "sync-protocol" in rules_of(verify_program(program),
                                       Severity.WARN)


# ---------------------------------------------------------------------------
# typed decode errors (TandemProgram.unpack / from_bytes)
# ---------------------------------------------------------------------------
def test_unpack_rejects_out_of_range_words():
    with pytest.raises(ProgramDecodeError) as exc:
        TandemProgram.unpack("p", [0, 1 << 32])
    assert exc.value.pc == 1


def test_unpack_rejects_undecodable_words():
    word = 0xA0000000  # opcode nibble 0xA is unassigned
    with pytest.raises(ProgramDecodeError) as exc:
        TandemProgram.unpack("p", [word])
    assert exc.value.pc == 0
    assert exc.value.word == word


def test_from_bytes_rejects_ragged_blobs():
    with pytest.raises(ProgramDecodeError):
        TandemProgram.from_bytes("p", b"\x00" * 6)


def test_bytes_roundtrip_still_lossless():
    program = clean_program()
    again = TandemProgram.from_bytes("prog", program.to_bytes())
    assert again.pack() == program.pack()


# ---------------------------------------------------------------------------
# compiler wiring
# ---------------------------------------------------------------------------
def test_compile_stores_verification_record_and_skips_when_warm():
    graph = build_tinynet()
    cache = get_cache()
    model = compile_model(graph)  # fresh or warm; either way record exists
    record = verify_record_for(graph)
    assert record["clean"] is True
    assert record["errors"] == 0
    # One report per lowered tile, plus the model-level deps report.
    assert record["blocks"] == sum(
        1 for cb in model.blocks if cb.tile is not None) + 1
    # A warm compile returns without re-running the verifier: the
    # "verified" record is already resident under the same key.
    before = cache.stats.stores
    compile_model(graph)
    assert cache.stats.stores == before


def test_verify_model_over_compiled_tinynet():
    report = verify_model(compile_model(build_tinynet()))
    assert report.clean
    assert report.errors == 0
    assert len(report.reports) >= 1
    json.loads(report.to_json())


def test_verification_error_message_lists_rules():
    report = verify_program(_program(
        loop_iter(0, 4), loop_num_inst(1),
        alu(AluFunc.MOVE, Operand(Namespace.IBUF1, 3),
            Operand(Namespace.IBUF1, 3))))
    assert not report.clean
    err = VerificationError(report)
    assert "iter-unconfigured" in str(err)
    assert err.report is report
