"""Scratchpads and Iterator Tables."""

import numpy as np
import pytest

from repro.isa import Namespace
from repro.simulator import (
    IteratorError,
    IteratorTable,
    Scratchpad,
    ScratchpadError,
    ScratchpadFile,
)
from repro.simulator.iterators import IteratorEntry


def test_read_write_and_counters():
    pad = Scratchpad("t", 16)
    pad.write(3, 42)
    assert pad.read(3) == 42
    assert pad.reads == 1
    assert pad.writes == 1
    pad.reset_counters()
    assert pad.reads == 0


def test_write_wraps_to_int32():
    pad = Scratchpad("t", 4)
    pad.write(0, (1 << 31) + 5)
    assert pad.read(0) == -(1 << 31) + 5


def test_out_of_bounds_access():
    pad = Scratchpad("t", 8)
    with pytest.raises(ScratchpadError):
        pad.read(8)
    with pytest.raises(ScratchpadError):
        pad.write(-1, 0)


def test_block_operations():
    pad = Scratchpad("t", 10)
    pad.load_block(2, np.arange(5))
    assert np.array_equal(pad.store_block(2, 5), np.arange(5))
    with pytest.raises(ScratchpadError):
        pad.load_block(8, np.arange(5))


def test_scratchpad_file_namespaces():
    pads = ScratchpadFile.build(interim_words=64, obuf_words=128,
                                imm_slots=32, vmem_words=64)
    assert pads[Namespace.IBUF1].words == 64
    assert pads[Namespace.OBUF].words == 128
    assert pads[Namespace.IMM].words == 32
    pads[Namespace.IBUF1].write(0, 1)
    pads[Namespace.IBUF2].read(0)
    assert pads.total_writes() == 1
    assert pads.total_reads() == 1


def test_iterator_entry_address():
    entry = IteratorEntry(base=100, strides=[32, 8, 1])
    assert entry.address((0, 0, 0)) == 100
    assert entry.address((1, 2, 3)) == 100 + 32 + 16 + 3
    assert entry.innermost_stride == 1


def test_iterator_table_configure_and_lookup():
    table = IteratorTable(Namespace.IBUF1, 32)
    table.set_base(5, 40)
    table.push_stride(5, 8)
    table.push_stride(5, 1)
    entry = table.lookup(5)
    assert entry.address((2, 3)) == 40 + 16 + 3
    # Reconfiguring the base clears stale strides.
    table.set_base(5, 0)
    assert table.lookup(5).strides == []


def test_iterator_index_limited_to_5_bits():
    table = IteratorTable(Namespace.IBUF1, 32)
    with pytest.raises(IteratorError, match="5-bit"):
        table.set_base(32, 0)


def test_unconfigured_iterator_rejected():
    table = IteratorTable(Namespace.OBUF, 32)
    with pytest.raises(IteratorError, match="before configuration"):
        table.lookup(0)
