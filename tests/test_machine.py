"""Detailed machine: hand-assembled programs exercising every mechanism."""

import numpy as np
import pytest

from repro.isa import (
    AluFunc,
    CalculusFunc,
    ComparisonFunc,
    DatatypeConfigFunc,
    Instruction,
    LdStFunc,
    Namespace,
    Opcode,
    Operand,
    PermuteFunc,
    SyncFunc,
    TandemProgram,
    alu,
    calculus,
    comparison,
    iterator_base,
    iterator_stride,
    loop_iter,
    loop_num_inst,
    permute,
    set_immediate,
    sync,
    tile_ldst,
)
from repro.simulator import (
    MachineError,
    PermuteBinding,
    TandemMachine,
    TileTransfer,
)

NS = Namespace


def _machine():
    return TandemMachine()


def _vector_program(func, n, with_imm=None):
    """dst[i] = func(a[i], b[i]) with a at 0, b at n, dst at 2n."""
    program = TandemProgram("p")
    if with_imm is not None:
        program.extend(set_immediate(0, with_imm))
    for idx, base in ((0, 0), (1, n), (2, 2 * n)):
        program.append(iterator_base(NS.IBUF1, idx, base))
        program.append(iterator_stride(NS.IBUF1, idx, 1))
    if with_imm is not None:
        program.append(iterator_base(NS.IMM, 0, 0))
        program.append(iterator_stride(NS.IMM, 0, 0))
    program.append(loop_iter(0, n))
    program.append(loop_num_inst(1))
    src2 = Operand(NS.IMM, 0) if with_imm is not None else Operand(NS.IBUF1, 1)
    program.append(alu(func, Operand(NS.IBUF1, 2), Operand(NS.IBUF1, 0), src2))
    return program


@pytest.mark.parametrize("func,ref", [
    (AluFunc.ADD, lambda a, b: a + b),
    (AluFunc.SUB, lambda a, b: a - b),
    (AluFunc.MUL, lambda a, b: a * b),
    (AluFunc.MAX, np.maximum),
    (AluFunc.MIN, np.minimum),
    (AluFunc.AND, lambda a, b: a & b),
    (AluFunc.OR, lambda a, b: a | b),
])
def test_vector_binary_ops(func, ref, rng):
    m = _machine()
    a = rng.integers(-1000, 1000, 50)
    b = rng.integers(-1000, 1000, 50)
    m.pads[NS.IBUF1].load_block(0, a)
    m.pads[NS.IBUF1].load_block(50, b)
    m.run(_vector_program(func, 50))
    out = m.pads[NS.IBUF1].store_block(100, 50)
    assert np.array_equal(out, ref(a, b))


def test_immediate_operand_broadcast(rng):
    m = _machine()
    a = rng.integers(-100, 100, 20)
    m.pads[NS.IBUF1].load_block(0, a)
    m.run(_vector_program(AluFunc.ADD, 20, with_imm=-453))
    out = m.pads[NS.IBUF1].store_block(40, 20)
    assert np.array_equal(out, a - 453)


def test_macc_accumulates_reduction(rng):
    """MACC with a stride-0 destination computes a dot product."""
    m = _machine()
    n = 31
    a = rng.integers(-50, 50, n)
    b = rng.integers(-50, 50, n)
    m.pads[NS.IBUF1].load_block(0, a)
    m.pads[NS.IBUF1].load_block(n, b)
    program = TandemProgram("dot")
    for idx, base, stride in ((0, 0, 1), (1, n, 1), (2, 2 * n, 0)):
        program.append(iterator_base(NS.IBUF1, idx, base))
        program.append(iterator_stride(NS.IBUF1, idx, stride))
    program.append(loop_iter(0, n))
    program.append(loop_num_inst(1))
    program.append(alu(AluFunc.MACC, Operand(NS.IBUF1, 2),
                       Operand(NS.IBUF1, 0), Operand(NS.IBUF1, 1)))
    m.run(program)
    assert m.pads[NS.IBUF1].read(2 * n) == int(np.dot(a, b))


def test_cond_move_predicated(rng):
    m = _machine()
    n = 16
    vals = rng.integers(-9, 9, n)
    flags = rng.integers(0, 2, n)
    m.pads[NS.IBUF1].load_block(0, vals)
    m.pads[NS.IBUF1].load_block(n, flags)
    program = TandemProgram("sel")
    for idx, base in ((0, 0), (1, n), (2, 2 * n)):
        program.append(iterator_base(NS.IBUF1, idx, base))
        program.append(iterator_stride(NS.IBUF1, idx, 1))
    program.append(loop_iter(0, n))
    program.append(loop_num_inst(1))
    program.append(alu(AluFunc.COND_MOVE, Operand(NS.IBUF1, 2),
                       Operand(NS.IBUF1, 0), Operand(NS.IBUF1, 1)))
    m.run(program)
    out = m.pads[NS.IBUF1].store_block(2 * n, n)
    assert np.array_equal(out, np.where(flags != 0, vals, 0))


def test_calculus_and_comparison(rng):
    m = _machine()
    n = 12
    a = rng.integers(-100, 100, n)
    m.pads[NS.IBUF1].load_block(0, a)
    program = TandemProgram("calc")
    for idx, base in ((0, 0), (1, n), (2, 2 * n)):
        program.append(iterator_base(NS.IBUF1, idx, base))
        program.append(iterator_stride(NS.IBUF1, idx, 1))
    program.append(loop_iter(0, n))
    program.append(loop_num_inst(2))
    program.append(calculus(CalculusFunc.ABS, Operand(NS.IBUF1, 1),
                            Operand(NS.IBUF1, 0)))
    program.append(comparison(ComparisonFunc.GT, Operand(NS.IBUF1, 2),
                              Operand(NS.IBUF1, 0), Operand(NS.IBUF1, 1)))
    m.run(program)
    assert np.array_equal(m.pads[NS.IBUF1].store_block(n, n), np.abs(a))
    assert np.array_equal(m.pads[NS.IBUF1].store_block(2 * n, n),
                          (a > np.abs(a)).astype(int))


def test_multidim_strided_access():
    """Column sums of a 4x8 matrix via a 2-deep nest."""
    m = _machine()
    mat = np.arange(32).reshape(4, 8)
    m.pads[NS.IBUF1].load_block(0, mat)
    program = TandemProgram("colsum")
    program.append(iterator_base(NS.IBUF1, 0, 0))      # src: mat[r, c]
    program.append(iterator_stride(NS.IBUF1, 0, 8))    # r stride
    program.append(iterator_stride(NS.IBUF1, 0, 1))    # c stride
    program.append(iterator_base(NS.IBUF1, 1, 32))     # dst: out[c]
    program.append(iterator_stride(NS.IBUF1, 1, 0))
    program.append(iterator_stride(NS.IBUF1, 1, 1))
    program.append(loop_iter(0, 4))
    program.append(loop_iter(1, 8))
    program.append(loop_num_inst(1))
    program.append(alu(AluFunc.ADD, Operand(NS.IBUF1, 1),
                       Operand(NS.IBUF1, 1), Operand(NS.IBUF1, 0)))
    m.run(program)
    out = m.pads[NS.IBUF1].store_block(32, 8)
    assert np.array_equal(out, mat.sum(axis=0))


def test_datatype_cast_mode_saturates(rng):
    m = _machine()
    a = np.array([300, -300, 7, -7])
    m.pads[NS.IBUF1].load_block(0, a)
    program = TandemProgram("cast")
    for idx, base in ((0, 0), (1, 4)):
        program.append(iterator_base(NS.IBUF1, idx, base))
        program.append(iterator_stride(NS.IBUF1, idx, 1))
    program.append(Instruction(Opcode.DATATYPE_CAST,
                               int(DatatypeConfigFunc.FXP8)))
    program.append(loop_iter(0, 4))
    program.append(loop_num_inst(1))
    program.append(alu(AluFunc.MOVE, Operand(NS.IBUF1, 1),
                       Operand(NS.IBUF1, 0)))
    program.append(Instruction(Opcode.DATATYPE_CAST,
                               int(DatatypeConfigFunc.FXP32)))
    m.run(program)
    out = m.pads[NS.IBUF1].store_block(4, 4)
    assert np.array_equal(out, [127, -128, 7, -7])


def test_permute_engine():
    m = _machine()
    data = np.arange(24).reshape(2, 3, 4)
    m.pads[NS.IBUF1].load_block(0, data)
    program = TandemProgram("perm")
    program.append(permute(PermuteFunc.SET_BASE_ADDR, 0, 0, 0))
    program.append(permute(PermuteFunc.SET_BASE_ADDR, 1, 0, 24))
    for dim, size in enumerate((2, 3, 4)):
        program.append(permute(PermuteFunc.SET_LOOP_ITER, 0, dim, size))
    program.append(permute(PermuteFunc.START))
    binding = PermuteBinding(NS.IBUF1, 0, NS.IBUF1, 24, (2, 3, 4), (2, 0, 1))
    result = m.run(program, permutes=[binding])
    out = m.pads[NS.IBUF1].store_block(24, 24).reshape(4, 2, 3)
    assert np.array_equal(out, data.transpose(2, 0, 1))
    assert result.permute_cycles > 0


def test_dae_load_and_store_roundtrip():
    m = _machine()
    tensor = np.arange(12).reshape(3, 4)
    m.dram.bind("x", tensor)
    m.dram.allocate("y", (3, 4))
    program = TandemProgram("ldst")
    program.append(tile_ldst(LdStFunc.LD_START))
    program.append(tile_ldst(LdStFunc.ST_START))
    transfers = [
        TileTransfer("ld", "x", NS.IBUF1, 0),
        TileTransfer("st", "y", NS.IBUF1, 0),
    ]
    result = m.run(program, transfers)
    assert np.array_equal(m.dram.get("y"), tensor)
    assert result.dae_cycles > 0


def test_dae_mismatched_direction_rejected():
    m = _machine()
    m.dram.bind("x", np.zeros(4))
    program = TandemProgram("bad")
    program.append(tile_ldst(LdStFunc.ST_START))
    with pytest.raises(MachineError, match="bound to a 'ld'"):
        m.run(program, [TileTransfer("ld", "x", NS.IBUF1, 0)])


def test_missing_binding_rejected():
    m = _machine()
    program = TandemProgram("bad")
    program.append(tile_ldst(LdStFunc.LD_START))
    with pytest.raises(MachineError, match="without a bound"):
        m.run(program)


def test_truncated_loop_body_rejected():
    m = _machine()
    program = TandemProgram("bad")
    program.append(loop_iter(0, 4))
    program.append(loop_num_inst(3))
    program.append(alu(AluFunc.MOVE, Operand(NS.IBUF1, 0),
                       Operand(NS.IBUF1, 0)))
    m.pads  # machine constructed fine
    with pytest.raises(MachineError, match="collecting"):
        # Iterator 0 must exist for meta collection; configure it.
        full = TandemProgram("bad2")
        full.append(iterator_base(NS.IBUF1, 0, 0))
        full.append(iterator_stride(NS.IBUF1, 0, 1))
        full.extend(program.instructions)
        m.run(full)


def test_too_deep_nest_rejected():
    m = _machine()
    program = TandemProgram("deep")
    for level in range(9):
        program.append(loop_iter(level % 8, 2))
    program.append(loop_num_inst(1))
    program.append(alu(AluFunc.MOVE, Operand(NS.IBUF1, 0),
                       Operand(NS.IBUF1, 0)))
    with pytest.raises(MachineError, match="8 levels"):
        m.run(program)


def test_sync_events_recorded():
    m = _machine()
    program = TandemProgram("sync")
    program.append(sync(SyncFunc.SIMD_START_EXEC))
    program.append(sync(SyncFunc.SIMD_END_BUF, group_id=3))
    program.append(sync(SyncFunc.SIMD_END_EXEC))
    result = m.run(program)
    assert [e.func for e in result.sync_events] == [
        SyncFunc.SIMD_START_EXEC, SyncFunc.SIMD_END_BUF,
        SyncFunc.SIMD_END_EXEC]
    assert result.sync_events[1].group_id == 3
    assert result.obuf_release_cycle is not None


def test_energy_accumulates_components(rng):
    m = _machine()
    a = rng.integers(-10, 10, 64)
    m.pads[NS.IBUF1].load_block(0, a)
    m.pads[NS.IBUF1].load_block(64, a)
    result = m.run(_vector_program(AluFunc.ADD, 64))
    assert result.energy.alu_pj > 0
    assert result.energy.spad_pj > 0
    assert result.energy.loop_addr_pj > 0
    assert result.energy.regfile_pj == 0  # no overlay
    assert result.energy.total_pj() == pytest.approx(
        sum([result.energy.alu_pj, result.energy.spad_pj,
             result.energy.loop_addr_pj, result.energy.other_pj,
             result.energy.dram_pj, result.energy.regfile_pj]))
