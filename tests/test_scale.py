"""Datacenter-scale core: bit-identity, autoscaling, traces, determinism."""

import json

import pytest

from repro.runtime import parallel_map
from repro.serving import (
    AutoscaleConfig,
    AutoscaleController,
    BatchPolicy,
    ClosedLoop,
    CostModel,
    DiurnalTrace,
    FleetSimulator,
    OpenLoopPoisson,
    ScaledFleetSimulator,
    ScalePoint,
    ServiceCosts,
    SweepPoint,
    TraceReplay,
    autoscaling_enabled,
    load_trace,
    run_point,
    run_scale_point,
    save_trace,
    scale_table,
    tail_bounded_throughput,
    validate_fleet_scale_report,
)
from repro.serving.scheduler import ModelCost


def toy_costs(latency_s=0.010, compile_s=0.005, amortized=0.5,
              models=("m",)):
    """Hand-set costs so expected times are computable by hand."""
    return ServiceCosts(
        costs={m: ModelCost(latency_s, compile_s) for m in models},
        amortized_fraction=amortized)


MODELS = ("a", "b")
COSTS = toy_costs(models=MODELS)


# ---------------------------------------------------------------------------
# Bit-identity with the legacy fleet (cells=1, autoscale off)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("routing",
                         ["round_robin", "least_loaded", "model_affinity"])
def test_scaled_core_bit_identical_to_legacy(routing):
    legacy = FleetSimulator(COSTS, devices=4, routing=routing).run(
        OpenLoopPoisson(MODELS, 300.0, 2.0), rate_rps=300.0)
    scaled = ScaledFleetSimulator(COSTS, devices=4, routing=routing).run(
        OpenLoopPoisson(MODELS, 300.0, 2.0), rate_rps=300.0)
    assert legacy.to_json() == scaled.to_json()


def test_scaled_core_bit_identical_closed_loop():
    def wl():
        return ClosedLoop(MODELS, clients=12, duration_s=1.0,
                          think_s=0.002)
    legacy = FleetSimulator(COSTS, devices=3).run(wl())
    scaled = ScaledFleetSimulator(COSTS, devices=3).run(wl())
    assert legacy.to_json() == scaled.to_json()


def test_scaled_core_bit_identical_under_overload():
    # Tiny admission queue: the reject path must match too.
    from repro.serving import AdmissionPolicy
    kwargs = dict(devices=2, admission=AdmissionPolicy(max_queue=4),
                  batch_policy=BatchPolicy("single"))
    legacy = FleetSimulator(COSTS, **kwargs).run(
        OpenLoopPoisson(MODELS, 2000.0, 1.0), rate_rps=2000.0)
    scaled = ScaledFleetSimulator(COSTS, **kwargs).run(
        OpenLoopPoisson(MODELS, 2000.0, 1.0), rate_rps=2000.0)
    assert legacy.rejected > 0
    assert legacy.to_json() == scaled.to_json()


def test_scaled_core_bit_identical_unverified_reject():
    costs = ServiceCosts(
        costs={"m": ModelCost(0.01, 0.0),
               "dirty": ModelCost(0.01, 0.0, verified=False)},
        amortized_fraction=0.5)
    legacy = FleetSimulator(costs, devices=2).run(
        OpenLoopPoisson(("m", "dirty"), 200.0, 1.0), rate_rps=200.0)
    scaled = ScaledFleetSimulator(costs, devices=2).run(
        OpenLoopPoisson(("m", "dirty"), 200.0, 1.0), rate_rps=200.0)
    assert legacy.verify_rejected > 0
    assert legacy.to_json() == scaled.to_json()


def test_sweep_point_use_scale_matches_legacy_run_point():
    point = SweepPoint(costs=toy_costs(), model="m", policy_kind="dynamic",
                       devices=4, rate_rps=400.0, duration_s=1.0)
    from dataclasses import replace
    legacy = run_point(point)
    scaled = run_point(replace(point, use_scale=True))
    assert legacy.to_json() == scaled.to_json()


# ---------------------------------------------------------------------------
# Constructor surface
# ---------------------------------------------------------------------------
def test_cells_must_divide_devices():
    with pytest.raises(ValueError, match="divide"):
        ScaledFleetSimulator(COSTS, devices=10, cells=3)


def test_autoscale_needs_multiple_cells():
    with pytest.raises(ValueError, match="cells >= 2"):
        ScaledFleetSimulator(COSTS, devices=4, cells=1,
                             autoscale=AutoscaleConfig())


def test_unknown_routing_rejected():
    with pytest.raises(ValueError, match="unknown routing"):
        ScaledFleetSimulator(COSTS, devices=2, routing="psychic")


def test_workload_model_must_be_costed():
    with pytest.raises(ValueError, match="not in ServiceCosts"):
        ScaledFleetSimulator(COSTS, devices=2).run(
            OpenLoopPoisson(("mystery",), 50.0, 1.0), rate_rps=50.0)


# ---------------------------------------------------------------------------
# Diurnal trace + trace files
# ---------------------------------------------------------------------------
def test_diurnal_trace_deterministic_and_stream_split():
    a = DiurnalTrace(MODELS, 500.0, 4.0).initial()
    b = DiurnalTrace(MODELS, 500.0, 4.0).initial()
    assert a == b
    other = DiurnalTrace(MODELS, 500.0, 4.0, stream=1).initial()
    assert a != other


def test_diurnal_trace_crests_mid_period():
    # With trough 0, the first quarter of the day must be much quieter
    # than the middle half (cosine envelope crests at period/2).
    arrivals = [r.arrival_s for r in
                DiurnalTrace(MODELS, 1000.0, 8.0,
                             trough_fraction=0.0).initial()]
    first_quarter = sum(1 for t in arrivals if t < 2.0)
    middle = sum(1 for t in arrivals if 2.0 <= t < 6.0)
    assert middle > 4 * first_quarter


def test_diurnal_trace_bursts_fill_the_trough():
    quiet = DiurnalTrace(MODELS, 800.0, 2.0, trough_fraction=0.0).initial()
    bursty = DiurnalTrace(MODELS, 800.0, 2.0, trough_fraction=0.0,
                          burst_every_s=1.0, burst_len_s=0.2).initial()
    # The burst windows accept at full rate where the envelope is near
    # zero, so early arrivals appear that the quiet trace never admits.
    assert sum(1 for r in bursty if r.arrival_s < 0.2) > \
        sum(1 for r in quiet if r.arrival_s < 0.2)


def test_diurnal_trace_duration_is_the_envelope():
    trace = DiurnalTrace(MODELS, 200.0, 4.0)
    assert trace.duration_s == 4.0
    assert all(r.arrival_s < 4.0 for r in trace.initial())


def test_diurnal_rejects_bad_parameters():
    with pytest.raises(ValueError):
        DiurnalTrace(MODELS, 0.0, 1.0)
    with pytest.raises(ValueError):
        DiurnalTrace(MODELS, 10.0, 1.0, trough_fraction=1.5)


def test_trace_round_trips_through_json(tmp_path):
    trace = DiurnalTrace(MODELS, 300.0, 2.0)
    path = tmp_path / "day.json"
    written = save_trace(trace, str(path))
    assert written == len(trace.initial())
    replay = load_trace(str(path))
    assert replay.initial() == trace.initial()
    assert replay.duration_s == trace.duration_s
    # And the replay simulates byte-identically to the source trace.
    a = ScaledFleetSimulator(COSTS, devices=4).run(trace)
    b = ScaledFleetSimulator(COSTS, devices=4).run(replay)
    assert a.to_json() == b.to_json()


def test_load_trace_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "not-a-trace", "requests": []}))
    with pytest.raises(ValueError, match="schema"):
        load_trace(str(path))


# ---------------------------------------------------------------------------
# Autoscale controller: hand-computed decision scenarios
# ---------------------------------------------------------------------------
def _controller(**overrides):
    values = dict(interval_s=1.0, min_cells=1, cooldown_s=2.0,
                  queue_high=4.0, queue_low=0.5)
    values.update(overrides)
    return AutoscaleController(AutoscaleConfig(**values), cells=4)


def test_controller_scales_out_on_burn():
    ctrl = _controller()
    # 100% bad traffic: burn is astronomically over every rule factor,
    # and both windows fill at the very first interval.
    action, reason = ctrl.decide(1.0, good=0, bad=50, queued=0,
                                 active_cells=1, active_devices=8)
    assert action == "scale-out"
    assert reason.startswith("burn:")


def test_controller_scales_out_on_queue_depth():
    ctrl = _controller()
    # Healthy traffic but 5 queued per device >= queue_high of 4.
    decision = ctrl.decide(1.0, good=100, bad=0, queued=40,
                           active_cells=1, active_devices=8)
    assert decision == ("scale-out", "queue:5.00>= 4.0")


def test_controller_scale_in_waits_for_cooldown():
    ctrl = _controller()
    ctrl.record(1.0, "scale-out", "queue:...", cell=1, cells_active=2)
    # Quiet at t=2 (1s since the action) — cooldown of 2s not served.
    assert ctrl.decide(2.0, good=10, bad=0, queued=0,
                       active_cells=2, active_devices=16) is None
    # Quiet at t=3 (2s since) — now scale-in is allowed.
    action, reason = ctrl.decide(3.0, good=10, bad=0, queued=0,
                                 active_cells=2, active_devices=16)
    assert action == "scale-in"
    assert reason.startswith("quiet:")


def test_controller_never_goes_below_min_or_above_max():
    ctrl = _controller(min_cells=2, max_cells=3)
    # Quiet forever at the floor: no scale-in.
    assert ctrl.decide(10.0, good=10, bad=0, queued=0,
                       active_cells=2, active_devices=16) is None
    # Firing at the ceiling: no scale-out.
    assert ctrl.decide(11.0, good=0, bad=50, queued=999,
                       active_cells=3, active_devices=24) is None


def test_park_does_not_reset_the_cooldown_clock():
    ctrl = _controller()
    ctrl.record(1.0, "scale-in", "quiet:...", cell=3, cells_active=3)
    ctrl.record(2.0, "park", "drained", cell=3, cells_active=3)
    assert ctrl.last_action_s == 1.0


def test_cost_model_is_linear_in_device_seconds():
    assert CostModel(3.6).dollars(3600.0) == pytest.approx(3.6)
    assert CostModel(3.6).dollars(0.0) == 0.0


def test_autoscale_config_validation():
    with pytest.raises(ValueError):
        AutoscaleConfig(interval_s=0.0)
    with pytest.raises(ValueError):
        AutoscaleConfig(min_cells=0)
    with pytest.raises(ValueError):
        AutoscaleConfig(min_cells=3, max_cells=2)
    with pytest.raises(ValueError):
        AutoscaleConfig(queue_low=5.0, queue_high=1.0)
    with pytest.raises(ValueError):
        AutoscaleConfig(price_per_device_hour=0.0)


def test_autoscale_config_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_AUTOSCALE_INTERVAL", "0.5")
    monkeypatch.setenv("REPRO_AUTOSCALE_MIN_CELLS", "2")
    monkeypatch.setenv("REPRO_AUTOSCALE_MAX_CELLS", "0")
    monkeypatch.setenv("REPRO_AUTOSCALE_PRICE", "7.25")
    config = AutoscaleConfig.from_env(cooldown_s=9.0)
    assert config.interval_s == 0.5
    assert config.min_cells == 2
    assert config.max_cells is None
    assert config.price_per_device_hour == 7.25
    assert config.cooldown_s == 9.0


def test_autoscaling_enabled_kill_switch(monkeypatch):
    monkeypatch.delenv("REPRO_AUTOSCALE", raising=False)
    assert not autoscaling_enabled()
    assert autoscaling_enabled(True)
    monkeypatch.setenv("REPRO_AUTOSCALE", "1")
    assert autoscaling_enabled()
    monkeypatch.setenv("REPRO_AUTOSCALE", "0")
    assert not autoscaling_enabled(True)


# ---------------------------------------------------------------------------
# End-to-end autoscaling through the simulator
# ---------------------------------------------------------------------------
def test_end_to_end_scale_out_on_queue_depth():
    # 40 same-instant requests against 1 active device (2 cells of 1,
    # min_cells=1): the first 0.1s boundary sees a deep queue and no
    # completions yet, so the scale-out must cite queue depth.
    costs = toy_costs(latency_s=0.1, compile_s=0.0)
    trace = TraceReplay([(0.0, "m")] * 40)
    sim = ScaledFleetSimulator(
        costs, devices=2, cells=2,
        autoscale=AutoscaleConfig(interval_s=0.1, queue_high=4.0))
    sim.run(trace)
    events = sim.payload["autoscale_events"]
    assert events and events[0]["action"] == "scale-out"
    assert events[0]["reason"].startswith("queue:")
    assert events[0]["t_s"] == pytest.approx(0.1)


def test_end_to_end_scale_out_on_burn_then_drain_and_park():
    # An impossible SLO makes every completion bad: the burn rule fires
    # as soon as the first batch lands, the fleet scales out, and once
    # the bad events slide out of the (shortened) burn windows the
    # extra cell drains, parks, and stops costing.
    from repro.telemetry.slo import BurnRateRule
    costs = toy_costs(latency_s=0.05, compile_s=0.0)
    trace = TraceReplay([(i * 0.01, "m") for i in range(60)])
    trace.duration_s = 3.0
    rule = BurnRateRule("fast", "page", 14.4, long_window_s=0.5,
                        short_window_s=0.2)
    sim = ScaledFleetSimulator(
        costs, devices=2, cells=2, slo_multiplier=0.001,
        autoscale=AutoscaleConfig(interval_s=0.1, cooldown_s=0.5,
                                  queue_high=1000.0, rules=(rule,)))
    sim.run(trace)
    actions = [e["action"] for e in sim.payload["autoscale_events"]]
    reasons = [e["reason"] for e in sim.payload["autoscale_events"]]
    assert "scale-out" in actions
    assert any(r.startswith("burn:") for r in reasons)
    assert "scale-in" in actions
    assert "park" in actions
    cost = sim.payload["cost"]
    assert cost["device_seconds"] < cost["static_device_seconds"]


def test_cost_accounting_hand_math():
    # 4 requests at t=0, 2 cells of 1 device, min_cells=1, decision
    # interval longer than the run: no boundaries ever close, cell 1
    # never activates, so exactly one device is billed for the makespan.
    costs = toy_costs(latency_s=0.1, compile_s=0.0)
    trace = TraceReplay([(0.0, "m")] * 4)
    sim = ScaledFleetSimulator(
        costs, devices=2, cells=2,
        autoscale=AutoscaleConfig(interval_s=5.0,
                                  price_per_device_hour=3.6))
    report = sim.run(trace)
    payload = sim.payload
    # Hand math: batch of 4 launches at the 2ms dynamic deadline;
    # service = 0.05 + 0.05*4 = 0.25s -> makespan 0.252s.
    assert report.makespan_s == pytest.approx(0.252)
    cost = payload["cost"]
    assert cost["device_seconds"] == pytest.approx(report.makespan_s)
    assert cost["static_device_seconds"] == pytest.approx(
        2 * report.makespan_s)
    assert cost["dollars"] == pytest.approx(report.makespan_s / 1000.0)
    assert cost["savings_fraction"] == pytest.approx(0.5)
    assert payload["autoscale_events"] == []
    assert validate_fleet_scale_report(payload) == []


def test_autoscaled_run_is_deterministic():
    def run():
        sim = ScaledFleetSimulator(
            COSTS, devices=8, cells=4,
            autoscale=AutoscaleConfig(interval_s=0.1, queue_high=2.0,
                                      cooldown_s=0.3))
        sim.run(DiurnalTrace(MODELS, 2000.0, 2.0, trough_fraction=0.1))
        return json.dumps(sim.payload, sort_keys=True)
    assert run() == run()


# ---------------------------------------------------------------------------
# Report payload, validator, helpers
# ---------------------------------------------------------------------------
def test_payload_validates_and_renders():
    sim = ScaledFleetSimulator(COSTS, devices=4, cells=2,
                               routing="round_robin")
    sim.run(OpenLoopPoisson(MODELS, 200.0, 1.0), rate_rps=200.0)
    assert validate_fleet_scale_report(sim.payload) == []
    table = scale_table(sim.payload)
    assert "4 devices" in table
    assert "autoscale off" in table


def test_validator_flags_malformed_payloads():
    sim = ScaledFleetSimulator(COSTS, devices=4, cells=2)
    sim.run(OpenLoopPoisson(MODELS, 100.0, 1.0), rate_rps=100.0)
    payload = json.loads(json.dumps(sim.payload))
    payload["schema"] = "wrong"
    payload["cell_size"] = 3
    payload["autoscale_events"] = [
        {"action": "explode", "t_s": 1.0, "cells_active": 99}]
    del payload["cost"]
    problems = validate_fleet_scale_report(payload)
    assert any("schema" in p for p in problems)
    assert any("cell_size" in p for p in problems)
    assert any("explode" in p for p in problems)
    assert any("cost" in p for p in problems)


def test_tail_bounded_throughput_falls_back_to_goodput():
    sim = ScaledFleetSimulator(COSTS, devices=4)
    report = sim.run(OpenLoopPoisson(MODELS, 200.0, 1.0), rate_rps=200.0)
    bound_ms = min(report.slo_ms.values())
    expected = (report.throughput_rps if report.p99_ms <= bound_ms
                else report.goodput_rps)
    assert tail_bounded_throughput(report) == expected
    # Saturate far past the knee: p99 blows through the SLO and the
    # credit must drop to goodput.
    slow = ScaledFleetSimulator(COSTS, devices=1,
                                batch_policy=BatchPolicy("single"))
    overload = slow.run(OpenLoopPoisson(MODELS, 3000.0, 1.0),
                        rate_rps=3000.0)
    assert overload.p99_ms > min(overload.slo_ms.values())
    assert tail_bounded_throughput(overload) == overload.goodput_rps


# ---------------------------------------------------------------------------
# Serial vs --jobs byte identity
# ---------------------------------------------------------------------------
def test_scale_points_serial_vs_jobs_byte_identical():
    points = [
        ScalePoint(costs=COSTS, models=MODELS, devices=8, cells=4,
                   peak_rps=1500.0, duration_s=1.0, autoscale=bool(i % 2),
                   stream=i)
        for i in range(4)
    ]
    serial = parallel_map(run_scale_point, points, jobs=1)
    forked = parallel_map(run_scale_point, points, jobs=2)
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(forked, sort_keys=True)
