"""Characterization analyses: census, roofline, overheads, area."""

import pytest

from repro.analysis import (
    average_overheads,
    cumulative_usage,
    model_stats,
    operator_diversity,
    overhead_analysis,
    ridge_point,
    roofline,
    tandem_area,
    utilization_comparison,
)
from repro.graph import NON_GEMM_CLASSES
from repro.models import build_model
from repro.simulator.params import TandemParams


# -- operator census (Figures 1, 2) ---------------------------------------------
def test_model_stats_counts():
    stats = model_stats(build_model("vgg16"), 2014)
    assert stats.gemm_nodes == 16
    assert stats.nongemm_nodes == len(build_model("vgg16")) - 16
    assert stats.nongemm_types <= 5  # the "first generation" claim
    assert 0 < stats.gemm_fraction < 1


def test_diversity_is_chronological_and_growing():
    stats = operator_diversity()
    years = [s.year for s in stats]
    assert years == sorted(years)
    assert stats[-1].nongemm_types >= 2 * stats[0].nongemm_types


def test_cumulative_usage_monotone():
    cumulative = cumulative_usage()
    totals = [c.cumulative_total for c in cumulative]
    assert totals == sorted(totals)
    # "merely 15% of total DNN operator nodes are GEMMs": ours ends <25%.
    assert cumulative[-1].gemm_fraction < 0.25
    assert all(cls in cumulative[-1].cumulative_by_class
               for cls in NON_GEMM_CLASSES)


# -- roofline (Figure 5) ------------------------------------------------------------
def test_roofline_elementwise_memory_bound():
    points = {p.operator: p for p in roofline()}
    for op in ("Add", "Mul", "Relu", "Cast", "Transpose"):
        assert points[op].memory_bound, op


def test_roofline_softmax_gelu_compute_bound():
    points = {p.operator: p for p in roofline()}
    assert not points["Softmax"].memory_bound
    assert not points["Gelu"].memory_bound


def test_roofline_attainable_never_exceeds_peak():
    for point in roofline():
        assert point.attainable_gops <= point.peak_gops + 1e-9


def test_ridge_point_scales_with_lanes():
    from repro.simulator.params import SimParams
    wide = SimParams(tandem=TandemParams(lanes=64))
    assert ridge_point(wide) == 2 * ridge_point()


# -- Figure 6 overheads --------------------------------------------------------------
@pytest.fixture(scope="module")
def overheads():
    return overhead_analysis(models=["mobilenetv2", "bert"])


def test_overheads_positive(overheads):
    for result in overheads:
        assert 0 <= result.nongemm_overhead < 1
        assert 0 <= result.e2e_overhead < 1
        assert result.e2e_overhead <= result.nongemm_overhead + 1e-9


def test_loop_logic_is_largest_overhead(overheads):
    averages = average_overheads(overheads)
    assert (averages["loop_logic"]["nongemm"]
            >= averages["regfile_ldst"]["nongemm"])


# -- Figure 8 utilization ---------------------------------------------------------------
def test_tile_granularity_improves_utilization():
    comparisons = utilization_comparison(models=["resnet50"])
    comparison = comparisons[0]
    assert comparison.gemm_gain > 0
    assert comparison.tandem_gain > 0


# -- Figure 26 area -----------------------------------------------------------------------
def test_area_matches_paper_at_table3():
    breakdown = tandem_area()
    assert breakdown.total_mm2 == pytest.approx(1.02, rel=0.01)
    fractions = breakdown.fractions()
    assert fractions["alu"] == pytest.approx(0.566, abs=0.01)
    assert fractions["interim_buf"] == pytest.approx(0.292, abs=0.01)
    assert fractions["permute"] == pytest.approx(0.120, abs=0.01)


def test_area_scales_with_lanes_and_buffers():
    wide = tandem_area(TandemParams(lanes=64))
    assert wide.alu_mm2 == pytest.approx(2 * tandem_area().alu_mm2)
    big_buf = tandem_area(TandemParams(interim_buf_kb=128))
    assert big_buf.interim_buf_mm2 == pytest.approx(
        2 * tandem_area().interim_buf_mm2)
