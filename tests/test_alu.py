"""Scalar ALU semantics, cross-checked against the vectorized reference."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler import integer_ops as vec
from repro.isa import AluFunc, CalculusFunc, ComparisonFunc
from repro.simulator import (
    ALU_OPS,
    CALCULUS_OPS,
    COMPARISON_OPS,
    cast_value,
    wrap32,
)
from repro.simulator.alu import INT32_MAX, INT32_MIN

int32s = st.integers(INT32_MIN, INT32_MAX)

_VEC = {
    AluFunc.ADD: vec.v_add, AluFunc.SUB: vec.v_sub, AluFunc.MUL: vec.v_mul,
    AluFunc.DIV: vec.v_div, AluFunc.MAX: vec.v_max, AluFunc.MIN: vec.v_min,
    AluFunc.RSHIFT: vec.v_rshift, AluFunc.LSHIFT: vec.v_lshift,
    AluFunc.AND: vec.v_and, AluFunc.OR: vec.v_or,
}


@pytest.mark.parametrize("func", sorted(_VEC, key=int))
@given(a=int32s, b=int32s)
def test_scalar_matches_vectorized(func, a, b):
    """The machine's per-element ALU and the numpy reference must agree
    bit-for-bit — this is what makes compiled-vs-reference runs exact."""
    scalar = wrap32(ALU_OPS[func](a, b))
    vectorized = int(_VEC[func](a, b))
    assert scalar == vectorized


@given(int32s)
def test_calculus_ops(a):
    assert CALCULUS_OPS[CalculusFunc.ABS](a) == wrap32(abs(a))
    assert CALCULUS_OPS[CalculusFunc.SIGN](a) == (a > 0) - (a < 0)
    assert CALCULUS_OPS[CalculusFunc.NEG](a) == wrap32(-a)


@given(int32s, int32s)
def test_comparisons_return_flags(a, b):
    assert COMPARISON_OPS[ComparisonFunc.GT](a, b) == int(a > b)
    assert COMPARISON_OPS[ComparisonFunc.EQ](a, b) == int(a == b)
    assert COMPARISON_OPS[ComparisonFunc.LE](a, b) == int(a <= b)


def test_divide_by_zero_saturates():
    assert ALU_OPS[AluFunc.DIV](5, 0) == INT32_MAX
    assert ALU_OPS[AluFunc.DIV](-5, 0) == INT32_MIN


def test_division_truncates_toward_zero():
    assert ALU_OPS[AluFunc.DIV](7, 2) == 3
    assert ALU_OPS[AluFunc.DIV](-7, 2) == -3
    assert ALU_OPS[AluFunc.DIV](7, -2) == -3


def test_arithmetic_right_shift_is_signed():
    assert ALU_OPS[AluFunc.RSHIFT](-8, 1) == -4
    assert ALU_OPS[AluFunc.RSHIFT](-1, 31) == -1


def test_shift_amount_wraps_at_32():
    assert ALU_OPS[AluFunc.LSHIFT](1, 33) == 2  # 5-bit barrel shifter


def test_move_ignores_second_operand():
    assert ALU_OPS[AluFunc.MOVE](42, 999) == 42


@given(int32s)
def test_wrap32_is_idempotent(a):
    assert wrap32(wrap32(a)) == wrap32(a)
    assert INT32_MIN <= wrap32(a) <= INT32_MAX


def test_cast_value_saturates():
    assert cast_value(1000, "fxp8") == 127
    assert cast_value(-1000, "fxp8") == -128
    assert cast_value(100, "fxp8") == 100
    assert cast_value(70000, "fxp16") == 32767
    assert cast_value(9, "fxp4") == 7
    assert cast_value(123456789, "fxp32") == 123456789
