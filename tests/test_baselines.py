"""Baseline design points: capabilities, costs, orderings."""

import pytest

from repro.baselines import (
    A100,
    JETSON_XAVIER_NX,
    RTX_2080_TI,
    CpuFallbackDesign,
    CpuModel,
    CpuParams,
    DedicatedUnitsDesign,
    GemminiDesign,
    GpuDesign,
    PcieLink,
    TpuVpuDesign,
    VpuFlags,
    runtime_breakdown,
)
from repro.graph import GraphBuilder
from repro.models import build_model


# -- PCIe / CPU component models ------------------------------------------------
def test_pcie_transfer_time_scales_with_bytes():
    link = PcieLink()
    small = link.transfer_seconds(1024)
    large = link.transfer_seconds(1024 * 1024)
    assert large > small > link.params.latency_s
    assert link.transfer_seconds(0) == 0.0


def test_cpu_dispatch_floor():
    cpu = CpuModel()
    b = GraphBuilder("t")
    x = b.input("x", (4,), dtype="int32")
    y = b.relu(x)
    g = b.finish([y])
    assert cpu.node_seconds(g, g.nodes[0]) >= cpu.params.dispatch_s


def test_cpu_complex_ops_slower_than_simple():
    cpu = CpuModel()
    b = GraphBuilder("t")
    x = b.input("x", (1, 512, 512), dtype="int32")
    r = b.relu(x)
    e = b.gelu(x)
    g = b.finish([r, e])
    relu_node = next(n for n in g.nodes if n.op_type == "Relu")
    gelu_node = next(n for n in g.nodes if n.op_type == "Gelu")
    assert cpu.node_seconds(g, gelu_node) >= cpu.node_seconds(g, relu_node)


# -- Baseline 1 / 2 ------------------------------------------------------------------
def test_baseline1_charges_pcie_for_every_nongemm():
    result = CpuFallbackDesign().evaluate("resnet50")
    assert result.comm_seconds > 0
    assert result.nongemm_seconds > 0
    assert result.total_seconds == pytest.approx(
        result.gemm_seconds + result.nongemm_seconds + result.comm_seconds)


def test_baseline2_faster_than_baseline1_on_cnn():
    b1 = CpuFallbackDesign().evaluate("resnet50")
    b2 = DedicatedUnitsDesign().evaluate("resnet50")
    assert b2.total_seconds < b1.total_seconds
    assert b2.comm_seconds < b1.comm_seconds


def test_dedicated_units_cover_paper_set():
    design = DedicatedUnitsDesign()
    graph = build_model("resnet50")
    covered = set()
    for node in graph.nodes:
        if not node.is_gemm and design.on_chip_nongemm(node, graph):
            covered.add(node.op_type)
    assert {"Relu", "Add", "MaxPool", "Cast"} <= covered


def test_dedicated_units_do_not_cover_complex_math():
    design = DedicatedUnitsDesign()
    graph = build_model("bert")
    for node in graph.nodes:
        if node.op_type in ("Softmax", "Gelu", "ReduceMean"):
            assert not design.on_chip_nongemm(node, graph)


def test_scale_by_scalar_is_dedicated_but_tensor_mul_is_not():
    design = DedicatedUnitsDesign()
    b = GraphBuilder("t")
    x = b.input("x", (8, 8), dtype="int32")
    scaled = b.mul_scalar(x, 3.0)
    y = b.input("y", (8, 8), dtype="int32")
    full = b.mul(x, y)
    g = b.finish([scaled, full])
    scalar_node = g.producer(scaled)
    tensor_node = g.producer(full)
    assert design.on_chip_nongemm(scalar_node, g)
    assert not design.on_chip_nongemm(tensor_node, g)


# -- Gemmini ------------------------------------------------------------------------
def test_gemmini_multicore_scales_riscv_only():
    one = GemminiDesign(1).evaluate("bert")
    many = GemminiDesign(32).evaluate("bert")
    assert many.total_seconds < one.total_seconds
    # GEMM time identical; only the core time shrinks.
    assert many.gemm_seconds == pytest.approx(one.gemm_seconds)


def test_gemmini_im2col_dominates_mobilenet():
    fractions = runtime_breakdown(GemminiDesign(1), "mobilenetv2")
    assert fractions["im2col_dedicated"] > 0.5
    assert sum(fractions.values()) == pytest.approx(1.0, abs=1e-6)


def test_gemmini_riscv_dominates_language_models():
    for model in ("bert", "gpt2", "yolov3"):
        fractions = runtime_breakdown(GemminiDesign(1), model)
        assert fractions["riscv"] > 0.5, model


def test_gemmini_vgg_close_to_gemm_bound():
    fractions = runtime_breakdown(GemminiDesign(1), "vgg16")
    assert fractions["gemm"] > 0.5


# -- TPU + VPU ------------------------------------------------------------------------
def test_vpu_flags_label():
    assert VpuFlags().label() == "rf+loops+fifo+sf"
    assert VpuFlags(False, False, False, False).label() == "tandem"


def test_vpu_ladder_monotone_speedup():
    ladder = TpuVpuDesign().ablation_ladder("mobilenetv2")
    order = ["vpu", "no_regfile", "no_regfile_loops", "no_regfile_loops_fifo"]
    times = [ladder[k].total_seconds for k in order]
    assert times == sorted(times, reverse=True), times


def test_vpu_special_functions_help_vpu():
    """Removing special functions (last ladder step) slows things down on
    math-heavy models — the paper's 0.8x factor."""
    ladder = TpuVpuDesign().ablation_ladder("bert")
    assert (ladder["tandem"].total_seconds
            > ladder["no_regfile_loops_fifo"].total_seconds)


def test_vpu_slower_than_tandem_end_to_end():
    for model in ("mobilenetv2", "bert"):
        ladder = TpuVpuDesign().ablation_ladder(model)
        assert ladder["vpu"].total_seconds > ladder["tandem"].total_seconds


# -- GPUs -------------------------------------------------------------------------------
def test_gpu_mode_validation():
    with pytest.raises(ValueError, match="unknown GPU execution mode"):
        GpuDesign(A100, "vulkan")


def test_tensorrt_faster_than_cuda():
    for params in (A100, RTX_2080_TI):
        trt = GpuDesign(params, "tensorrt").evaluate("bert")
        cuda = GpuDesign(params, "cuda").evaluate("bert")
        assert trt.total_seconds < cuda.total_seconds


def test_a100_faster_than_jetson():
    a100 = GpuDesign(A100).evaluate("resnet50")
    jetson = GpuDesign(JETSON_XAVIER_NX).evaluate("resnet50")
    assert a100.total_seconds < jetson.total_seconds


def test_gpu_energy_positive_and_power_bounded():
    result = GpuDesign(JETSON_XAVIER_NX).evaluate("mobilenetv2")
    assert 0 < result.average_power_watts <= JETSON_XAVIER_NX.tdp_watts


def test_tensorrt_fusion_absorbs_elementwise():
    trt = GpuDesign(A100, "tensorrt").evaluate("resnet50")
    cuda = GpuDesign(A100, "cuda").evaluate("resnet50")
    assert "Relu" not in trt.per_op_seconds
    assert "Relu" in cuda.per_op_seconds
