"""RunResult arithmetic and the energy ledger."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.results import RunResult, geomean
from repro.simulator import EnergyLedger

pos = st.floats(min_value=1e-9, max_value=1e6, allow_nan=False)


def _result(seconds, joules):
    return RunResult(design="d", model="m", total_seconds=seconds,
                     energy_joules=joules)


def test_speedup_and_energy_reduction():
    fast = _result(1.0, 2.0)
    slow = _result(4.0, 10.0)
    assert fast.speedup_over(slow) == 4.0
    assert fast.energy_reduction_over(slow) == 5.0


def test_average_power_and_perf_per_watt():
    result = _result(2.0, 10.0)
    assert result.average_power_watts == 5.0
    assert result.perf_per_watt() == pytest.approx(0.5 / 5.0)


def test_zero_time_guards():
    result = _result(0.0, 0.0)
    assert result.average_power_watts == 0.0
    assert result.throughput_per_second == 0.0
    assert result.perf_per_watt() == 0.0


@given(pos, pos, pos, pos)
def test_speedup_antisymmetry(t1, e1, t2, e2):
    a, b = _result(t1, e1), _result(t2, e2)
    assert a.speedup_over(b) * b.speedup_over(a) == pytest.approx(1.0)


def test_geomean():
    assert geomean([1, 4]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([7]) == pytest.approx(7.0)


def test_ledger_total_and_breakdown():
    ledger = EnergyLedger(dram_pj=50, spad_pj=25, alu_pj=25)
    assert ledger.total_pj() == 100
    breakdown = ledger.breakdown()
    assert breakdown["dram"] == 0.5
    assert sum(breakdown.values()) == pytest.approx(1.0)


def test_empty_ledger_breakdown_is_zero():
    assert all(v == 0 for v in EnergyLedger().breakdown().values())


def test_ledger_add_and_scale():
    a = EnergyLedger(dram_pj=10, alu_pj=5)
    b = EnergyLedger(dram_pj=1, loop_addr_pj=2)
    merged = a.add(b)
    assert merged.dram_pj == 11
    assert merged.loop_addr_pj == 2
    doubled = merged.scaled(2)
    assert doubled.total_pj() == 2 * merged.total_pj()


def test_ledger_joules_conversion():
    assert EnergyLedger(dram_pj=1e12).total_joules() == pytest.approx(1.0)
