"""Compiled-model serialization: the deployable artifact round-trips."""

import json

import numpy as np
import pytest

from repro.compiler import compile_model, dump_model, load_blocks
from repro.models import build_tinynet
from repro.npu import FunctionalRunner
from repro.simulator import estimate


@pytest.fixture(scope="module")
def compiled():
    return compile_model(build_tinynet())


def test_dump_is_valid_json(compiled):
    data = json.loads(dump_model(compiled))
    assert data["model"] == "tinynet"
    assert len(data["blocks"]) == len(compiled.blocks)


def test_programs_roundtrip_bit_exact(compiled):
    blocks = load_blocks(dump_model(compiled))
    for original, restored in zip(compiled.blocks, blocks):
        assert restored["kind"] == original.kind
        assert restored["tiles"] == original.tiles
        if original.tile is None:
            assert restored["tile"] is None
            continue
        assert restored["tile"].program.pack() == original.tile.program.pack()
        assert restored["tile"].imm_values == original.tile.imm_values
        assert len(restored["tile"].transfers) == len(original.tile.transfers)


def test_restored_metadata_estimates_identically(compiled):
    blocks = load_blocks(dump_model(compiled))
    for original, restored in zip(compiled.blocks, blocks):
        if original.tile is None:
            continue
        a = estimate(original.tile.meta, compiled.sim_params)
        b = estimate(restored["tile"].meta, compiled.sim_params)
        assert a.cycles == b.cycles
        assert a.energy.total_pj() == pytest.approx(b.energy.total_pj())


def test_restored_tile_runs_functionally(compiled, rng):
    """A deserialized program drives the machine to the same outputs."""
    blocks = load_blocks(dump_model(compiled))
    # Patch the restored tiles into a copy of the compiled model.
    for cb, restored in zip(compiled.blocks, blocks):
        if cb.tile is not None:
            cb.tile.program = restored["tile"].program
            cb.tile.transfers = restored["tile"].transfers
            cb.tile.permutes = restored["tile"].permutes
    graph = compiled.graph
    bindings = {name: rng.integers(-5, 5, spec.shape)
                for name, spec in graph.tensors.items()
                if graph.producer(name) is None}
    runner = FunctionalRunner(compiled)
    runner.bind(bindings)
    outputs = runner.run({"image": bindings["image"]})
    assert outputs[graph.graph_outputs[0]].size == 10


def test_version_check():
    with pytest.raises(ValueError, match="format"):
        load_blocks(json.dumps({"format_version": 99, "blocks": []}))
