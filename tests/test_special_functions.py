"""VPU special-function compilation mode (Figure 18's last rung)."""

import pytest

from repro.compiler import compile_model
from repro.graph import GraphBuilder
from repro.models import build_model
from repro.simulator import estimate


def _gelu_softmax_graph():
    b = GraphBuilder("t")
    x = b.input("x", (8, 64), dtype="int32")
    y = b.gelu(x)
    z = b.softmax(y)
    return b.finish([z])


def test_special_functions_shrink_programs():
    graph = _gelu_softmax_graph()
    normal = compile_model(graph)
    special = compile_model(graph, special_functions=True)
    assert special.total_instructions() < normal.total_instructions()


def test_special_functions_shrink_cycles():
    graph = _gelu_softmax_graph()
    normal = compile_model(graph)
    special = compile_model(graph, special_functions=True)
    n = sum(estimate(cb.tile.meta, normal.sim_params).compute_cycles
            for cb in normal.blocks if cb.tile)
    s = sum(estimate(cb.tile.meta, special.sim_params).compute_cycles
            for cb in special.blocks if cb.tile)
    assert s < n


def test_special_functions_do_not_change_simple_ops():
    b = GraphBuilder("t")
    x = b.input("x", (8, 64), dtype="int32")
    y = b.relu(x)
    graph = b.finish([y])
    normal = compile_model(graph)
    special = compile_model(graph, special_functions=True)
    assert special.total_instructions() == normal.total_instructions()


def test_bert_special_function_benefit_is_real():
    """On BERT the single-instruction exp/gelu/sqrt path must cut the
    Tandem instruction count noticeably (the VPU's one advantage)."""
    normal = compile_model(build_model("bert"))
    special = compile_model(build_model("bert"), special_functions=True)
    assert special.total_instructions() < 0.95 * normal.total_instructions()
