"""Fault injection + resilient serving: plans, injector, fleet, chaos.

Four layers under test, each with hand-computable scenarios:

* :mod:`repro.faults.plan` — JSON round-trips, unknown-key rejection,
  ``scaled()`` ladders and the ``quiet`` fast path.
* :mod:`repro.faults.injector` — determinism under ``REPRO_SEED``,
  scheduled crashes/slowdowns, label-keyed per-event draws.
* :mod:`repro.serving.fleet` under a plan — permanent crashes,
  retry/eject/re-admit, tile-granularity re-execution, flaky compiles,
  corrupted downloads, retry budgets and queue bursts, with the naive
  policy as the contrast case for each mechanism.
* :mod:`repro.faults.chaos` — serial vs ``--jobs`` byte-identical
  reports and the ``repro-chaos-report-v1`` schema validator.
"""

import json
import zlib

import pytest

from repro.faults import (
    BurstSpec,
    CrashSpec,
    CorruptSpec,
    FaultInjector,
    FaultPlan,
    FlakyCompileSpec,
    SlowdownSpec,
    TileFaultSpec,
    chaos_grid,
    chaos_report,
    chaos_report_json,
    default_plan,
    run_chaos,
    validate_chaos_report,
)
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    FleetSimulator,
    ModelCost,
    ResiliencePolicy,
    ServiceCosts,
    TraceReplay,
    simulate,
)

LATENCY_S = 0.010
COMPILE_S = 0.005
#: Per-request SLO under the fleet defaults: max(1 ms, 10 x latency).
SLO_S = 0.100
#: Timeout under the default resilient policy: 2 x SLO.
TIMEOUT_S = 0.200


def toy_costs(latency_s=LATENCY_S, compile_s=COMPILE_S, amortized=0.5,
              models=("m",), tiles=1):
    """Hand-set costs so expected times are computable by hand."""
    return ServiceCosts(
        costs={m: ModelCost(latency_s, compile_s, True, tiles)
               for m in models},
        amortized_fraction=amortized)


def run_fleet(workload, costs, *, devices=1, routing="least_loaded",
              fault_plan=None, resilience=None, max_queue=256):
    """One single-batch fleet run with the trace log kept."""
    sim = FleetSimulator(costs, devices=devices,
                         batch_policy=BatchPolicy("single"),
                         admission=AdmissionPolicy(max_queue),
                         routing=routing, collect_trace=True,
                         fault_plan=fault_plan, resilience=resilience)
    report = sim.run(workload)
    return report, sim.trace_log


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

def full_plan():
    """A plan exercising every spec field, for round-trip tests."""
    return FaultPlan(
        name="everything", stream="s1",
        crash=CrashSpec(p_per_device_s=0.01, outage_s=5.0, at=((0, 1.0),)),
        slowdown=SlowdownSpec(p_per_device_s=0.1, factor=3.0,
                              duration_s=1.5, at=((1, 2.0),)),
        flaky_compile=FlakyCompileSpec(p=0.2),
        tile_fault=TileFaultSpec(p_per_batch=0.3, tiles=4),
        corrupt=CorruptSpec(p_per_download=0.4, detection_rate=0.9),
        burst=BurstSpec(p_per_s=0.5, size=16, at=(2.5,)))


def test_plan_json_round_trip():
    plan = full_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan
    # The dict form uses the external key names, one per fault class.
    payload = plan.as_dict()
    assert set(payload) == {"name", "stream", "device_crash",
                            "device_slowdown", "flaky_compile",
                            "tile_fault", "corrupt_program", "queue_burst"}


def test_plan_file_round_trip(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(full_plan().to_json())
    assert FaultPlan.from_file(str(path)) == full_plan()


def test_plan_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault-plan keys"):
        FaultPlan.from_dict({"name": "x", "device_crush": {}})
    with pytest.raises(ValueError, match="device_crash"):
        FaultPlan.from_dict({"device_crash": {"p_per_dev": 0.1}})
    with pytest.raises(ValueError, match="JSON object"):
        FaultPlan.from_dict([1, 2])


def test_plan_scaling_and_quiet():
    plan = full_plan()
    double = plan.scaled(2.0)
    assert double.crash.p_per_device_s == pytest.approx(0.02)
    # Probabilities clamp at 1.0; durations/factors are not rates and
    # stay put.
    assert double.corrupt.p_per_download == pytest.approx(0.8)
    assert plan.scaled(10.0).flaky_compile.p == 1.0
    assert double.slowdown.factor == plan.slowdown.factor
    # Scale 0 drops scheduled faults too — the fault-free control.
    off = plan.scaled(0.0)
    assert off.quiet
    assert off.crash.at == () and off.burst.at == ()
    assert not plan.quiet
    assert FaultPlan().quiet
    assert not default_plan().quiet
    with pytest.raises(ValueError):
        plan.scaled(-1.0)


# ---------------------------------------------------------------------------
# Injector
# ---------------------------------------------------------------------------

def test_injector_deterministic_under_fixed_seed():
    plan = FaultPlan(name="det", crash=CrashSpec(p_per_device_s=0.2),
                     slowdown=SlowdownSpec(p_per_device_s=0.2),
                     burst=BurstSpec(p_per_s=0.5, size=2),
                     flaky_compile=FlakyCompileSpec(p=0.5))
    a = FaultInjector(plan, devices=4, duration_s=10.0)
    b = FaultInjector(plan, devices=4, duration_s=10.0)
    assert a.crashes == b.crashes
    assert a.slowdowns == b.slowdowns
    assert a.bursts == b.bursts
    draws = [(d, m, k) for d in range(4) for m in ("m", "n")
             for k in range(5)]
    assert [a.flaky_compile(*x) for x in draws] == \
           [b.flaky_compile(*x) for x in draws]


def test_injector_sensitive_to_seed(monkeypatch):
    plan = FaultPlan(name="det", crash=CrashSpec(p_per_device_s=0.2),
                     flaky_compile=FlakyCompileSpec(p=0.5))

    def materialize():
        inj = FaultInjector(plan, devices=4, duration_s=10.0)
        return (tuple(inj.crashes),
                tuple(inj.flaky_compile(d, "m", k)
                      for d in range(4) for k in range(8)))

    monkeypatch.setenv("REPRO_SEED", "1")
    one = materialize()
    monkeypatch.setenv("REPRO_SEED", "2")
    two = materialize()
    assert one != two


def test_injector_scheduled_crashes_and_windows():
    plan = FaultPlan(crash=CrashSpec(at=((1, 2.5), (9, 0.5))),
                     slowdown=SlowdownSpec(factor=3.0, duration_s=2.0,
                                           at=((0, 1.0),)))
    inj = FaultInjector(plan, devices=2, duration_s=10.0)
    # Device 9 does not exist in a 2-device fleet: dropped, not an error.
    assert inj.crashes == [(2.5, 1)]
    assert inj.slowdowns == [(1.0, 3.0, 0)]
    assert inj.slow_factor(0, 1.5) == 3.0
    assert inj.slow_factor(0, 3.5) == 1.0
    assert inj.slow_factor(1, 1.5) == 1.0
    # Permanent crash by default; finite outages heal at t + outage_s.
    assert inj.outage_end(2.5) is None
    finite = FaultInjector(FaultPlan(crash=CrashSpec(outage_s=2.0)),
                           devices=1, duration_s=1.0)
    assert finite.outage_end(1.0) == pytest.approx(3.0)


def test_injector_draw_rates_track_probability():
    plan = FaultPlan(flaky_compile=FlakyCompileSpec(p=0.5))
    inj = FaultInjector(plan, devices=1, duration_s=1.0)
    hits = sum(inj.flaky_compile(0, "m", k) for k in range(400))
    assert 0.35 < hits / 400 < 0.65
    # p=0 short-circuits without drawing.
    quiet = FaultInjector(FaultPlan(), devices=1, duration_s=1.0)
    assert not quiet.flaky_compile(0, "m", 0)
    assert not quiet.tile_fault(0, "m", 0)
    assert not quiet.corrupt_download(0, "m", 0)


# ---------------------------------------------------------------------------
# Fleet under faults: crashes, retries, circuit breaker
# ---------------------------------------------------------------------------

def crash_scenario(resilience):
    """Two devices, the model's affinity device dies at t=1.0.

    Request 0 (t=0) completes before the crash; request 1 (t=5) lands
    on the dead-but-admitted device and only a retry policy can save it.
    """
    pin = zlib.crc32(b"m") % 2
    plan = FaultPlan(name="one-crash",
                     crash=CrashSpec(at=((pin, 1.0),)))
    workload = TraceReplay([(0.0, "m"), (5.0, "m")])
    return run_fleet(workload, toy_costs(), devices=2,
                     routing="model_affinity", fault_plan=plan,
                     resilience=resilience)


def test_naive_fleet_loses_requests_to_permanent_crash():
    report, trace = crash_scenario(ResiliencePolicy.naive())
    assert report.faults.get("device_crash") == 1
    assert report.completed == 1
    assert report.failed == 1       # stuck on the dead device forever
    assert report.retries == 0 and report.timeouts == 0
    assert [e["kind"] for e in trace].count("crash") == 1


def test_resilient_fleet_retries_around_crash_and_ejects():
    policy = ResiliencePolicy(eject_threshold=2, retry_budget_fraction=1.0)
    report, trace = crash_scenario(policy)
    assert report.completed == 2 and report.failed == 0
    # Timeout at 5.2 (queued on the dead device), retry backs off to the
    # same pinned device, second timeout at ~5.402 trips the breaker,
    # and the retry after ejection probes over to the live device.
    assert report.timeouts == 2
    assert report.retries == 2
    assert report.devices_ejected == 1
    assert report.devices_readmitted == 1
    kinds = [e["kind"] for e in trace]
    assert kinds.count("timeout") == 2
    assert kinds.count("eject") == 1
    assert kinds.count("readmit") == 1
    retried = next(e for e in trace if e["kind"] == "retry")
    assert retried["backoff_s"] == pytest.approx(2e-3)
    # Both batches that completed: one per device (the failover compile).
    assert report.compiles == 2


def test_retry_budget_zero_fails_instead_of_retrying():
    plan = FaultPlan(crash=CrashSpec(at=((0, 0.5),)))
    policy = ResiliencePolicy(retry_budget_fraction=0.0, eject_threshold=0)
    workload = TraceReplay([(1.0, "m")])
    report, trace = run_fleet(workload, toy_costs(), devices=1,
                              fault_plan=plan, resilience=policy)
    assert report.timeouts == 1
    assert report.retries == 0      # budget of 0: straight to failed
    assert report.failed == 1 and report.completed == 0
    assert any(e["kind"] == "retry-exhausted" for e in trace)


# ---------------------------------------------------------------------------
# Fleet under faults: tile faults, flaky compiles, corrupt downloads
# ---------------------------------------------------------------------------

def tile_scenario(resilience, faulted_tiles=1, total_tiles=5):
    plan = FaultPlan(tile_fault=TileFaultSpec(p_per_batch=1.0,
                                              tiles=faulted_tiles))
    workload = TraceReplay([(0.0, "m")])
    return run_fleet(workload, toy_costs(tiles=total_tiles),
                     fault_plan=plan, resilience=resilience)


def test_tile_fault_reexecutes_only_faulted_tiles_when_resilient():
    report, trace = tile_scenario(ResiliencePolicy())
    fault = next(e for e in trace if e["kind"] == "tile-fault")
    # 1 of 5 tiles re-runs: penalty is base/5.
    assert fault["tiles"] == 1
    assert fault["penalty_s"] == pytest.approx(LATENCY_S / 5)
    assert report.faults.get("tile_fault") == 1
    assert report.completed == 1


def test_tile_fault_reruns_whole_batch_when_naive():
    _, trace = tile_scenario(ResiliencePolicy.naive())
    fault = next(e for e in trace if e["kind"] == "tile-fault")
    assert fault["penalty_s"] == pytest.approx(LATENCY_S)


def test_tile_fault_count_clamps_to_model_tiles():
    _, trace = tile_scenario(ResiliencePolicy(), faulted_tiles=99,
                             total_tiles=5)
    fault = next(e for e in trace if e["kind"] == "tile-fault")
    # More faulted tiles than the model has: everything re-runs, which
    # is exactly the naive penalty.
    assert fault["tiles"] == 5
    assert fault["penalty_s"] == pytest.approx(LATENCY_S)


def flaky_scenario(resilience):
    plan = FaultPlan(flaky_compile=FlakyCompileSpec(p=1.0))
    workload = TraceReplay([(0.0, "m")])
    return run_fleet(workload, toy_costs(), fault_plan=plan,
                     resilience=resilience)


def test_flaky_compile_fails_batch_when_naive():
    report, trace = flaky_scenario(ResiliencePolicy.naive())
    assert report.completed == 0 and report.failed == 1
    assert report.compile_retries == 0
    assert report.faults.get("flaky_compile") == 1
    assert any(e["kind"] == "compile-fail" for e in trace)


def test_flaky_compile_retried_in_place_when_resilient():
    # p=1.0 flakes every attempt: the resilient policy burns its
    # max_retries (visible as compile-retry traces) before giving up.
    report, trace = flaky_scenario(ResiliencePolicy(max_retries=3))
    assert report.compile_retries == 3
    assert report.faults.get("flaky_compile") == 4
    assert report.failed == 1
    assert [e["kind"] for e in trace].count("compile-retry") == 3


def corrupt_scenario(resilience, detection_rate=1.0):
    plan = FaultPlan(corrupt=CorruptSpec(p_per_download=1.0,
                                         detection_rate=detection_rate))
    workload = TraceReplay([(0.0, "m")])
    return run_fleet(workload, toy_costs(), fault_plan=plan,
                     resilience=resilience)


def test_corrupt_download_poisons_completions_when_naive():
    report, trace = corrupt_scenario(ResiliencePolicy.naive())
    # The batch completes, but on a corrupted resident program: counted
    # as completed, excluded from goodput.
    assert report.completed == 1
    assert report.bad_completions == 1
    assert report.goodput_rps == 0.0
    assert any(e["kind"] == "corrupt-undetected" for e in trace)


def test_corrupt_download_detected_and_recompiled_when_resilient():
    # p=1.0 corrupts every re-download; with perfect detection the
    # verifier catches each one until retries run out — but nothing bad
    # is ever served.
    report, trace = corrupt_scenario(ResiliencePolicy(max_retries=3))
    assert report.bad_completions == 0
    assert report.failed == 1
    assert report.faults.get("corrupt_program") == 4
    assert report.faults.get("corrupt_detected") == 4
    assert [e["kind"] for e in trace].count("corrupt-detected") == 4


def test_corrupt_download_undetected_poisons_even_resilient():
    report, _ = corrupt_scenario(ResiliencePolicy(), detection_rate=0.0)
    assert report.bad_completions == 1
    assert report.faults.get("corrupt_detected") is None


# ---------------------------------------------------------------------------
# Fleet under faults: queue bursts + graceful degradation
# ---------------------------------------------------------------------------

def test_queue_burst_overflows_small_queues():
    plan = FaultPlan(burst=BurstSpec(size=3, at=(0.0,)))
    workload = TraceReplay([(0.0, "m")])
    report, trace = run_fleet(workload, toy_costs(), fault_plan=plan,
                              max_queue=2)
    # rid 0 launches immediately; two burst requests queue; the third
    # finds the queue full and is rejected.
    assert report.offered == 4
    assert report.faults.get("queue_burst") == 1
    assert report.rejected == 1
    assert report.completed == 3
    assert any(e["kind"] == "queue-burst" for e in trace)
    assert any(e["kind"] == "queue-reject" for e in trace)


def test_all_devices_ejected_sheds_arrivals():
    # Device 0 is the whole fleet and dies at t=0.5; after the breaker
    # ejects it, later arrivals shed at admission instead of queueing.
    plan = FaultPlan(crash=CrashSpec(at=((0, 0.5),)))
    policy = ResiliencePolicy(eject_threshold=1, cooldown_s=50.0,
                              retry_budget_fraction=0.0)
    workload = TraceReplay([(1.0, "m"), (2.0, "m")])
    report, trace = run_fleet(workload, toy_costs(), devices=1,
                              fault_plan=plan, resilience=policy)
    # Request 0: queued on the dead device, times out at 3.0 (slo x 2
    # after its 1.0 + 1.8 re-arm... exact time immaterial), ejects the
    # device; request 1 arrives with nothing admitted and is shed.
    assert report.devices_ejected == 1
    assert any(e["kind"] == "shed" for e in trace)
    assert report.rejected >= 1
    assert report.completed == 0


def test_quiet_plan_matches_no_plan():
    """A plan with all rates zero must not perturb the legacy fleet."""
    workload = TraceReplay([(0.0, "m"), (0.001, "m"), (0.002, "m")])
    base = simulate(workload, toy_costs(),
                    batch_policy=BatchPolicy("single"))
    quiet = simulate(workload, toy_costs(),
                     batch_policy=BatchPolicy("single"),
                     fault_plan=FaultPlan())
    assert base == quiet


# ---------------------------------------------------------------------------
# Chaos sweeps
# ---------------------------------------------------------------------------

def small_grid():
    plan = FaultPlan(name="small",
                     crash=CrashSpec(p_per_device_s=0.05),
                     tile_fault=TileFaultSpec(p_per_batch=0.2),
                     corrupt=CorruptSpec(p_per_download=0.5))
    return chaos_grid(plan=plan, scales=(1.0,), model="m", devices=2,
                      rate_rps=300.0, duration_s=1.0,
                      costs=toy_costs(latency_s=0.004, compile_s=0.002))


def test_chaos_grid_prepends_fault_free_control():
    points = small_grid()
    # 2 policies x (0.0 control + 1.0): the control is always present
    # exactly once per policy even though scales=(1.0,) omitted it.
    assert [(p.policy_kind, p.fault_scale) for p in points] == [
        ("naive", 0.0), ("naive", 1.0),
        ("resilient", 0.0), ("resilient", 1.0)]


def test_chaos_serial_and_parallel_reports_identical():
    points = small_grid()
    serial = chaos_report(points, run_chaos(points, jobs=1))
    forked = chaos_report(points, run_chaos(points, jobs=2))
    assert chaos_report_json(serial) == chaos_report_json(forked)


def test_chaos_report_validates_and_summarizes():
    points = small_grid()
    payload = chaos_report(points, run_chaos(points))
    assert validate_chaos_report(payload) == []
    # JSON round-trip must survive validation too (what CI checks).
    assert validate_chaos_report(
        json.loads(chaos_report_json(payload))) == []
    for policy in ("naive", "resilient"):
        entry = payload["summary"][policy]
        assert entry["baseline_goodput_rps"] > 0
        assert 0.0 <= entry["min_goodput_retention"] <= 1.5
    controls = [r for r in payload["rows"] if r["fault_scale"] == 0.0]
    assert all(r["goodput_retention"] == pytest.approx(1.0)
               for r in controls)


def test_chaos_validator_rejects_malformed_reports():
    points = small_grid()
    payload = chaos_report(points, run_chaos(points))

    assert validate_chaos_report([]) != []
    assert validate_chaos_report({}) != []

    wrong_schema = dict(payload, schema="nope")
    assert any("schema" in p for p in validate_chaos_report(wrong_schema))

    empty_rows = dict(payload, rows=[])
    assert any("non-empty" in p for p in validate_chaos_report(empty_rows))

    bad_row = json.loads(chaos_report_json(payload))
    del bad_row["rows"][0]["goodput_rps"]
    assert any("goodput_rps" in p for p in validate_chaos_report(bad_row))

    bad_policy = json.loads(chaos_report_json(payload))
    bad_policy["rows"][0]["policy"] = "heroic"
    assert any("policy" in p for p in validate_chaos_report(bad_policy))
