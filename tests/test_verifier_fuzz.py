"""Mutation fuzzing: the static verifier must catch what breaks execution.

One packed word of a compiled tinynet program is corrupted per mutant —
an iterator stride, a loop trip count, a Code Repeater body size, a
config namespace id, or a compute operand namespace. A mutant counts as
*bad* when the mutated model decodes to garbage, crashes the functional
machine, or produces different DRAM contents than the pristine run. The
verifier must flag (with an error-severity finding) at least 95% of the
bad mutants; corruptions that leave execution bit-identical are ignored.

The corruption machinery lives in :mod:`repro.faults.corrupt` — the
same site enumeration and mutation values also drive the fault
injector's corrupted-program-download model, so this suite is the
ground truth for the detection rates chaos plans assume.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.verifier import verify_words
from repro.compiler import compile_model
from repro.faults.corrupt import CORRUPTION_KINDS, corrupt_word, model_sites
from repro.isa import ProgramDecodeError, TandemProgram
from repro.models import build_tinynet
from repro.npu import FunctionalRunner
from repro.runtime import seeded_rng

PER_CLASS = 6  # mutation sites sampled per corruption class


@pytest.fixture(scope="module")
def pristine():
    graph = build_tinynet()
    model = compile_model(graph)
    rng = seeded_rng("verifier-fuzz", "bindings")
    bindings = {}
    for name, spec in graph.tensors.items():
        if graph.producer(name) is None:
            hi = 4 if name.startswith(("w_", "b_")) else 16
            bindings[name] = rng.integers(-hi, hi, spec.shape)
    inputs = {k: v for k, v in bindings.items() if k in graph.graph_inputs}
    runner = FunctionalRunner(model)
    runner.bind(bindings)
    baseline = runner.run(inputs)
    return graph, model, bindings, inputs, baseline


def _evaluate(pristine, block_idx, pc, new_word):
    """Run one mutant: returns (statically_flagged, dynamically_bad)."""
    graph, model, bindings, inputs, baseline = pristine
    cb = model.blocks[block_idx]
    words = list(cb.tile.program.pack())
    words[pc] = new_word
    owns = cb.block.gemm is not None
    report = verify_words(cb.tile.program.name, words, owns_obuf=owns)
    flagged = report.errors > 0

    try:
        program = TandemProgram.unpack(cb.tile.program.name, words)
    except ProgramDecodeError:
        return flagged, True
    blocks = list(model.blocks)
    blocks[block_idx] = dataclasses.replace(
        cb, tile=dataclasses.replace(cb.tile, program=program))
    mutant = dataclasses.replace(model, blocks=blocks)
    try:
        runner = FunctionalRunner(mutant)
        runner.bind(bindings)
        outputs = runner.run(inputs)
    except Exception:
        return flagged, True
    bad = any(not np.array_equal(outputs[name], baseline[name])
              for name in baseline)
    return flagged, bad


def test_verifier_catches_mutations_that_break_execution(pristine):
    _, model, *_ = pristine
    rng = seeded_rng("verifier-fuzz", "mutants")
    by_class = {}
    for site in model_sites(model):
        by_class.setdefault(site[0], []).append(site)
    assert set(by_class) == set(CORRUPTION_KINDS)

    bad_total = 0
    flagged_bad = 0
    missed = []
    for kind, sites in sorted(by_class.items()):
        picks = rng.choice(len(sites), size=min(PER_CLASS, len(sites)),
                           replace=False)
        for pick in picks:
            _, block_idx, pc, word = sites[int(pick)]
            new_word = corrupt_word(kind, word, rng)
            if new_word == word:
                continue
            flagged, bad = _evaluate(pristine, block_idx, pc, new_word)
            if bad:
                bad_total += 1
                if flagged:
                    flagged_bad += 1
                else:
                    missed.append((kind, block_idx, pc))
    # Enough semantically destructive mutants to make the ratio meaningful.
    assert bad_total >= 12
    assert flagged_bad / bad_total >= 0.95, (
        f"verifier missed {len(missed)} of {bad_total} bad mutants: {missed}")


def test_pristine_model_verifies_clean(pristine):
    _, model, *_ = pristine
    for cb in model.blocks:
        if cb.tile is None:
            continue
        report = verify_words(cb.tile.program.name, cb.tile.program.pack(),
                              owns_obuf=cb.block.gemm is not None)
        assert report.errors == 0, report.render()
