"""ISA: 32-bit encodings, round-trips, field limits (Figure 12)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    AluFunc,
    CalculusFunc,
    ComparisonFunc,
    EncodingError,
    Instruction,
    IteratorConfigFunc,
    LdStFunc,
    LoopFunc,
    Namespace,
    Opcode,
    Operand,
    PermuteFunc,
    SyncFunc,
    TandemProgram,
    alu,
    decode,
    is_compute_opcode,
    iterator_base,
    iterator_stride,
    loop_iter,
    loop_num_inst,
    permute,
    set_immediate,
    sync,
    tile_ldst,
)

namespaces = st.sampled_from(list(Namespace))
iter_idx = st.integers(0, 31)


@st.composite
def compute_instructions(draw):
    opcode = draw(st.sampled_from([Opcode.ALU, Opcode.CALCULUS,
                                   Opcode.COMPARISON]))
    funcs = {Opcode.ALU: AluFunc, Opcode.CALCULUS: CalculusFunc,
             Opcode.COMPARISON: ComparisonFunc}[opcode]
    return Instruction(
        opcode=opcode, func=int(draw(st.sampled_from(list(funcs)))),
        dst=Operand(draw(namespaces), draw(iter_idx)),
        src1=Operand(draw(namespaces), draw(iter_idx)),
        src2=Operand(draw(namespaces), draw(iter_idx)))


@st.composite
def config_instructions(draw):
    opcode = draw(st.sampled_from([Opcode.SYNC, Opcode.ITERATOR_CONFIG,
                                   Opcode.LOOP, Opcode.PERMUTE,
                                   Opcode.TILE_LD_ST, Opcode.DATATYPE_CAST]))
    return Instruction(
        opcode=opcode, func=draw(st.integers(0, 15)),
        field3=draw(st.integers(0, 7)), field5=draw(st.integers(0, 31)),
        imm=draw(st.integers(-(1 << 15), (1 << 16) - 1)))


@given(compute_instructions())
def test_compute_roundtrip(inst):
    word = inst.pack()
    assert 0 <= word < (1 << 32)
    back = decode(word)
    assert back.opcode == inst.opcode
    assert back.func == inst.func
    assert back.dst == inst.dst
    assert back.src1 == inst.src1
    assert back.src2 == inst.src2


@given(config_instructions())
def test_config_roundtrip(inst):
    word = inst.pack()
    back = decode(word)
    assert back.opcode == inst.opcode
    assert back.func == inst.func
    assert back.field3 == inst.field3
    assert back.field5 == inst.field5
    # Immediates round-trip modulo 16-bit sign interpretation.
    assert (back.imm & 0xFFFF) == (inst.imm & 0xFFFF)


def test_every_instruction_is_32_bits():
    # The headline claim of Section 3.2: strided addresses + compute fit
    # one 32-bit instruction word.
    inst = alu(AluFunc.MACC, Operand(Namespace.OBUF, 31),
               Operand(Namespace.IBUF1, 31), Operand(Namespace.IBUF2, 31))
    assert inst.pack() < (1 << 32)


def test_field_overflow_rejected():
    with pytest.raises(EncodingError):
        Instruction(Opcode.LOOP, 0, field3=8).pack()  # 3-bit field
    with pytest.raises(EncodingError):
        Instruction(Opcode.LOOP, 0, field5=32).pack()  # 5-bit field
    with pytest.raises(EncodingError):
        Instruction(Opcode.LOOP, 0, imm=1 << 17).pack()


def test_iterator_idx_overflow_rejected():
    with pytest.raises(EncodingError):
        alu(AluFunc.ADD, Operand(Namespace.IBUF1, 32),
            Operand(Namespace.IBUF1, 0), Operand(Namespace.IBUF1, 0)).pack()


def test_set_immediate_small_is_one_word():
    insts = set_immediate(0, -453)
    assert len(insts) == 1
    assert insts[0].func == int(IteratorConfigFunc.IMM_VALUE)


def test_set_immediate_large_needs_high_word():
    insts = set_immediate(3, 1 << 20)
    assert len(insts) == 2
    assert insts[1].func == int(IteratorConfigFunc.IMM_HIGH)


def test_set_immediate_32bit_bound():
    with pytest.raises(ValueError):
        set_immediate(0, 1 << 31)


@given(st.integers(-(1 << 31), (1 << 31) - 1))
def test_set_immediate_reconstructs_value(value):
    insts = set_immediate(0, value)
    low = insts[0].imm & 0xFFFF
    if len(insts) == 1:
        got = low - (1 << 16) if low >= (1 << 15) else low
    else:
        word = ((insts[1].imm & 0xFFFF) << 16) | low
        got = word - (1 << 32) if word >= (1 << 31) else word
    assert got == value


def test_sync_funcs_distinct():
    packed = {sync(f).pack() for f in SyncFunc}
    assert len(packed) == len(SyncFunc)


def test_program_binary_roundtrip():
    program = TandemProgram("p")
    program.append(sync(SyncFunc.SIMD_START_EXEC))
    program.extend(set_immediate(0, 123456))
    program.append(iterator_base(Namespace.IBUF1, 0, 100))
    program.append(iterator_stride(Namespace.IBUF1, 0, 1))
    program.append(loop_iter(0, 64))
    program.append(loop_num_inst(1))
    program.append(alu(AluFunc.ADD, Operand(Namespace.IBUF1, 0),
                       Operand(Namespace.IBUF1, 0),
                       Operand(Namespace.IMM, 0)))
    program.append(tile_ldst(LdStFunc.ST_START))
    program.append(permute(PermuteFunc.START))
    program.append(sync(SyncFunc.SIMD_END_EXEC))
    blob = program.to_bytes()
    assert len(blob) == 4 * len(program)
    back = TandemProgram.from_bytes("p2", blob)
    assert back.pack() == program.pack()


def test_program_histogram_and_counts():
    program = TandemProgram("p")
    program.append(loop_iter(0, 4))
    program.append(loop_num_inst(1))
    program.append(alu(AluFunc.MUL, Operand(Namespace.IBUF1, 0),
                       Operand(Namespace.IBUF1, 1),
                       Operand(Namespace.IBUF1, 2)))
    assert program.compute_instruction_count() == 1
    assert program.config_instruction_count() == 2
    assert program.opcode_histogram()[Opcode.LOOP] == 2


def test_disassembler_mentions_operands():
    program = TandemProgram("p")
    program.append(alu(AluFunc.MACC, Operand(Namespace.OBUF, 3),
                       Operand(Namespace.IBUF1, 1),
                       Operand(Namespace.IMM, 2)))
    text = program.disassemble()
    assert "MACC" in text
    assert "OBUF[it3]" in text
    assert "IMM[it2]" in text


def test_from_bytes_rejects_ragged_blob():
    with pytest.raises(ValueError):
        TandemProgram.from_bytes("x", b"\x00\x01\x02")


def test_is_compute_opcode():
    assert is_compute_opcode(Opcode.ALU)
    assert is_compute_opcode(Opcode.CALCULUS)
    assert not is_compute_opcode(Opcode.LOOP)
    assert not is_compute_opcode(Opcode.TILE_LD_ST)
