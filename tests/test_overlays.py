"""VPU-emulation overlays on the detailed machine.

The overlays must change *time and energy*, never *results* — they model
conventional mechanisms (register files, branch loops, address
arithmetic) around the same computation.
"""

import numpy as np
import pytest

from repro.compiler import ReferenceExecutor, compile_model
from repro.graph import GraphBuilder
from repro.npu import FunctionalRunner
from repro.runtime import seeded_rng
from repro.simulator import SimParams, TandemMachine, VpuOverlay
from repro.simulator.params import TandemParams


def _gelu_graph():
    b = GraphBuilder("t")
    x = b.input("x", (4, 40), dtype="int32")
    y = b.gelu(x)
    return b.finish([y])


def _run_with_overlay(overlay, data):
    graph = _gelu_graph()
    model = compile_model(graph, SimParams(overlay=overlay))
    runner = FunctionalRunner(model)
    outputs = runner.run({"x": data})
    return outputs[graph.graph_outputs[0]], runner.total_machine_result()


OVERLAYS = {
    "base": VpuOverlay(),
    "regfile": VpuOverlay(regfile_loads=True),
    "loops": VpuOverlay(conventional_loops=True),
    "addr": VpuOverlay(explicit_address_calc=True),
    "all": VpuOverlay(regfile_loads=True, conventional_loops=True,
                      explicit_address_calc=True),
}


@pytest.fixture(scope="module")
def overlay_runs():
    rng = seeded_rng("overlays", 3)
    data = rng.integers(-800, 800, (4, 40))
    runs = {name: _run_with_overlay(ov, data)
            for name, ov in OVERLAYS.items()}
    reference = ReferenceExecutor(_gelu_graph()).run({"x": data})
    return runs, reference


def test_overlays_preserve_results(overlay_runs):
    runs, reference = overlay_runs
    want = reference[_gelu_graph().graph_outputs[0]]
    for name, (got, _res) in runs.items():
        np.testing.assert_array_equal(got, want, err_msg=name)


def test_every_overlay_costs_cycles(overlay_runs):
    runs, _ = overlay_runs
    base = runs["base"][1].cycles
    for name in ("regfile", "loops", "addr"):
        assert runs[name][1].cycles > base, name
    assert runs["all"][1].cycles > max(runs[n][1].cycles
                                       for n in ("regfile", "loops", "addr"))


def test_regfile_overlay_charges_regfile_energy(overlay_runs):
    runs, _ = overlay_runs
    assert runs["base"][1].energy.regfile_pj == 0
    assert runs["regfile"][1].energy.regfile_pj > 0


def test_addr_overlay_moves_energy_out_of_loop_logic(overlay_runs):
    runs, _ = overlay_runs
    base = runs["base"][1].energy
    addr = runs["addr"][1].energy
    # Without the specialized front-end there is no loop/addr logic to
    # charge; the work shows up as ordinary instructions instead.
    assert addr.loop_addr_pj < base.loop_addr_pj
    assert addr.alu_pj > base.alu_pj


def test_loops_overlay_amortizes_over_long_bodies(overlay_runs):
    """GeLU's 15-instruction body amortizes the per-chunk branch cost, so
    the loop overlay hurts it less than the Figure 6c single-op regime."""
    runs, _ = overlay_runs
    ratio = runs["loops"][1].compute_cycles / runs["base"][1].compute_cycles
    assert 1.1 < ratio < 2.0


def test_loops_overlay_triples_single_op_nests():
    """Single-op nests are the 70 %-overhead regime of Figure 6c."""
    import numpy as np

    def run(overlay):
        b = GraphBuilder("t")
        x = b.input("x", (4, 40), dtype="int32")
        y = b.relu(x)
        graph = b.finish([y])
        model = compile_model(graph, SimParams(overlay=overlay))
        runner = FunctionalRunner(model)
        runner.run({"x": np.zeros((4, 40), dtype=int)})
        return runner.total_machine_result()

    base = run(VpuOverlay())
    loops = run(VpuOverlay(conventional_loops=True))
    ratio = loops.compute_cycles / base.compute_cycles
    assert 1.5 < ratio < 8.0
