"""The evaluation runtime: content-addressed cache + parallel map.

Covers the invariants the harness relies on: hit/miss accounting, the
on-disk tier round-tripping to the same results as in-memory, key
invalidation when the graph or the NPU configuration changes, and
``parallel_map`` matching serial execution element-for-element.
"""

from dataclasses import replace

import pytest

from repro.compiler import compile_model
from repro.graph import GraphBuilder
from repro.models import build_model
from repro.npu import NPUTandem, table3_config
from repro.runtime import (
    EvalCache,
    cached_evaluate,
    get_cache,
    graph_fingerprint,
    parallel_map,
    set_cache,
)


@pytest.fixture(autouse=True)
def _restore_session_cache():
    """Re-install the suite's isolated cache after every test here.

    Tests in this module swap the process-wide cache singleton; leaving
    it reset (``set_cache(None)``) would make the next ``get_cache()``
    lazily build the *default* cache over the working tree's
    ``.repro_cache``, silently de-hermetizing every test that runs
    afterwards (and exposing them to stale records from older code).
    """
    previous = get_cache()
    yield
    set_cache(previous)


@pytest.fixture
def fresh_cache(tmp_path):
    cache = EvalCache(directory=tmp_path / "cache")
    set_cache(cache)
    yield cache
    set_cache(None)


def _small_graph(name="t", shape=(4, 8)):
    b = GraphBuilder(name)
    x = b.input("x", shape, dtype="int32")
    return b.finish([b.relu(x)])


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------
def test_graph_fingerprint_is_structural():
    assert graph_fingerprint(_small_graph()) == \
        graph_fingerprint(_small_graph())


def test_graph_fingerprint_changes_with_structure():
    assert graph_fingerprint(_small_graph(shape=(4, 8))) != \
        graph_fingerprint(_small_graph(shape=(4, 9)))


# ---------------------------------------------------------------------------
# Hit/miss accounting and tiers
# ---------------------------------------------------------------------------
def test_result_cache_hit_and_miss_accounting(fresh_cache):
    npu = NPUTandem()
    first = npu.evaluate("resnet50")
    assert fresh_cache.stats.misses >= 1
    assert fresh_cache.stats.stores >= 1
    hits_before = fresh_cache.stats.hits
    second = npu.evaluate("resnet50")
    assert fresh_cache.stats.hits > hits_before
    assert second == first
    # Hits rehydrate fresh objects: mutating one cannot leak into the
    # cache or into other callers.
    assert second is not first
    second.energy_breakdown["dram"] = -1.0
    assert npu.evaluate("resnet50").energy_breakdown != \
        second.energy_breakdown


def test_disk_tier_round_trip_equals_in_memory(tmp_path):
    directory = tmp_path / "cache"
    set_cache(EvalCache(directory=directory))
    try:
        npu = NPUTandem()
        warm = npu.evaluate("resnet50")
        # A brand-new cache over the same directory has an empty memory
        # tier, so this lookup can only come from disk.
        set_cache(EvalCache(directory=directory))
        cold_process = NPUTandem().evaluate("resnet50")
        assert get_cache().stats.hits >= 1
        assert get_cache().stats.misses == 0
        assert cold_process == warm
    finally:
        set_cache(None)


def test_compiled_artifact_round_trips_from_disk(tmp_path):
    directory = tmp_path / "cache"
    graph = build_model("mobilenetv2")
    config = table3_config()
    set_cache(EvalCache(directory=directory))
    try:
        first = compile_model(graph, config.sim, config.gemm)
        set_cache(EvalCache(directory=directory))
        second = compile_model(graph, config.sim, config.gemm)
        assert get_cache().stats.hits == 1
        assert [type(b.tile).__name__ for b in second.blocks] == \
            [type(b.tile).__name__ for b in first.blocks]
        assert second.total_instructions() == first.total_instructions()
        for a, b in zip(first.blocks, second.blocks):
            assert a.tiles == b.tiles
            assert a.name == b.name
            if a.tile is not None:
                assert list(b.tile.program.pack()) == \
                    list(a.tile.program.pack())
    finally:
        set_cache(None)


def test_compile_cache_shares_blocks_within_process(fresh_cache):
    graph = build_model("resnet50")
    config = table3_config()
    first = compile_model(graph, config.sim, config.gemm)
    second = compile_model(graph, config.sim, config.gemm)
    assert second.blocks is first.blocks


# ---------------------------------------------------------------------------
# Invalidation by construction
# ---------------------------------------------------------------------------
def test_result_key_changes_with_config(fresh_cache):
    base = NPUTandem()
    base.evaluate("resnet50")
    misses = fresh_cache.stats.misses
    bigger = table3_config()
    bigger = replace(bigger, sim=replace(
        bigger.sim, tandem=replace(bigger.sim.tandem, lanes=64)))
    NPUTandem(bigger).evaluate("resnet50")
    assert fresh_cache.stats.misses > misses


def test_result_key_changes_with_graph(fresh_cache):
    npu = NPUTandem()
    a = npu.evaluate(_small_graph(shape=(4, 8)))
    b = npu.evaluate(_small_graph(shape=(8, 8)))
    assert fresh_cache.stats.misses >= 2
    assert a.total_seconds != b.total_seconds or a != b


def test_corrupt_disk_entry_invalidates(fresh_cache):
    npu = NPUTandem()
    npu.evaluate("resnet50")
    (path,) = (fresh_cache.directory / "results").glob("*.json")
    path.write_text("{not json")
    # New cache instance: memory tier empty, disk entry corrupt.
    set_cache(EvalCache(directory=fresh_cache.directory))
    NPUTandem().evaluate("resnet50")
    assert get_cache().stats.invalidations == 1
    assert not path.exists() or path.read_text() != "{not json"


def test_disabled_cache_stores_nothing(tmp_path):
    set_cache(EvalCache(directory=tmp_path / "cache", enabled=False))
    try:
        NPUTandem().evaluate("resnet50")
        assert get_cache().stats.stores == 0
        assert get_cache().entry_counts() == {}
    finally:
        set_cache(None)


# ---------------------------------------------------------------------------
# cached_evaluate for non-NPU designs
# ---------------------------------------------------------------------------
def test_cached_evaluate_baseline(fresh_cache):
    from repro.baselines import CpuFallbackDesign
    design = CpuFallbackDesign()
    first = cached_evaluate(design, "resnet50")
    hits = fresh_cache.stats.hits
    second = cached_evaluate(CpuFallbackDesign(), "resnet50")
    assert fresh_cache.stats.hits > hits
    assert second == first


# ---------------------------------------------------------------------------
# Parallel map
# ---------------------------------------------------------------------------
def test_parallel_map_matches_serial():
    items = list(range(17))
    assert parallel_map(_square, items, jobs=4) == [i * i for i in items]


def test_parallel_map_preserves_order_and_length():
    items = ["fig14", "fig15", "fig16"]
    assert parallel_map(_identity, items, jobs=2) == items
    assert parallel_map(_identity, [], jobs=8) == []


def _square(value):
    return value * value


def _identity(value):
    return value
