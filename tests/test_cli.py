"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_models_lists_benchmarks(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "bert" in out
    assert "tinynet" in out


def test_evaluate_default_design(capsys):
    assert main(["evaluate", "tinynet"]) == 0
    out = capsys.readouterr().out
    assert "npu-tandem" in out
    assert "latency (ms)" in out


def test_evaluate_named_design_with_per_op(capsys):
    assert main(["evaluate", "tinynet", "--design", "gemmini",
                 "--per-op"]) == 0
    out = capsys.readouterr().out
    assert "gemmini" in out
    assert "operator" in out


def test_compare_lists_every_design(capsys):
    assert main(["compare", "tinynet"]) == 0
    out = capsys.readouterr().out
    for design in ("npu-tandem", "gemm+offchip-cpu", "gemm+dedicated-units",
                   "tpu+vpu", "jetson-xavier-nx-tensorrt"):
        assert design in out


def test_compile_disassemble_and_dump(capsys, tmp_path):
    dump = tmp_path / "model.json"
    assert main(["compile", "tinynet", "--disassemble", "1",
                 "--dump", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "SYNC.SIMD_START_EXEC" in out
    data = json.loads(dump.read_text())
    assert data["model"] == "tinynet"


def test_experiment_command(capsys):
    assert main(["experiment", "fig26"]) == 0
    out = capsys.readouterr().out
    assert "area" in out.lower()


def test_trace_command(capsys):
    assert main(["trace", "tinynet"]) == 0
    out = capsys.readouterr().out
    assert "gemm" in out
    assert "#" in out


def test_parser_rejects_unknown_design():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["evaluate", "bert", "--design", "tpu-v5"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_markdown_writer(tmp_path):
    from repro.harness.markdown import write_experiments_body
    path = tmp_path / "body.md"
    write_experiments_body(str(path), ids=["fig26", "table3"])
    text = path.read_text()
    assert "## fig26" in text
    assert "## table3" in text
    with pytest.raises(KeyError):
        write_experiments_body(str(path), ids=["fig99"])
