"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_models_lists_benchmarks(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "bert" in out
    assert "tinynet" in out


def test_evaluate_default_design(capsys):
    assert main(["evaluate", "tinynet"]) == 0
    out = capsys.readouterr().out
    assert "npu-tandem" in out
    assert "latency (ms)" in out


def test_evaluate_named_design_with_per_op(capsys):
    assert main(["evaluate", "tinynet", "--design", "gemmini",
                 "--per-op"]) == 0
    out = capsys.readouterr().out
    assert "gemmini" in out
    assert "operator" in out


def test_compare_lists_every_design(capsys):
    assert main(["compare", "tinynet"]) == 0
    out = capsys.readouterr().out
    for design in ("npu-tandem", "gemm+offchip-cpu", "gemm+dedicated-units",
                   "tpu+vpu", "jetson-xavier-nx-tensorrt"):
        assert design in out


def test_compile_disassemble_and_dump(capsys, tmp_path):
    dump = tmp_path / "model.json"
    assert main(["compile", "tinynet", "--disassemble", "1",
                 "--dump", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "SYNC.SIMD_START_EXEC" in out
    data = json.loads(dump.read_text())
    assert data["model"] == "tinynet"


def test_experiment_command(capsys):
    assert main(["experiment", "fig26"]) == 0
    out = capsys.readouterr().out
    assert "area" in out.lower()


def test_trace_command(capsys):
    assert main(["trace", "tinynet"]) == 0
    out = capsys.readouterr().out
    assert "gemm" in out
    assert "#" in out


def test_parser_rejects_unknown_design():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["evaluate", "bert", "--design", "tpu-v5"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cache_stats_smoke(capsys):
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries" in out
    assert "hits" in out


def test_serve_dry_run_smoke(capsys):
    assert main(["serve", "--dry-run", "--model", "bert", "--devices", "4",
                 "--rate", "200", "--batch-policy", "dynamic"]) == 0
    out = capsys.readouterr().out
    assert "no simulation" in out
    assert "dynamic" in out
    assert "4" in out


def test_serve_prints_slo_metrics_table(capsys, tmp_path):
    report_json = tmp_path / "report.json"
    assert main(["serve", "--model", "tinynet", "--devices", "2",
                 "--rate", "500", "--duration", "0.5",
                 "--batch-policy", "dynamic",
                 "--json", str(report_json)]) == 0
    out = capsys.readouterr().out
    assert "p50 latency" in out
    assert "p99 latency" in out
    assert "SLO attainment" in out
    payload = json.loads(report_json.read_text())
    assert payload["devices"] == 2
    assert payload["completed"] > 0


def test_serve_closed_loop_smoke(capsys):
    assert main(["serve", "--model", "tinynet", "--closed-loop",
                 "--clients", "4", "--duration", "0.01",
                 "--think-ms", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_serve_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve", "--batch-policy", "magic"])


def test_console_script_entry_point_declared_and_callable():
    """pyproject must expose `repro = repro.cli:main` as a script."""
    from pathlib import Path
    pyproject = (Path(__file__).resolve().parent.parent
                 / "pyproject.toml").read_text()
    try:
        import tomllib
        scripts = tomllib.loads(pyproject)["project"]["scripts"]
        assert scripts["repro"] == "repro.cli:main"
    except ModuleNotFoundError:  # Python < 3.11: textual check
        assert "[project.scripts]" in pyproject
        assert 'repro = "repro.cli:main"' in pyproject
    # The referenced callable exists and behaves like a console script:
    # argv-less entry, integer exit status.
    module_path, _, attr = "repro.cli:main".partition(":")
    import importlib
    entry = getattr(importlib.import_module(module_path), attr)
    assert entry(["models"]) == 0


def test_markdown_writer(tmp_path):
    from repro.harness.markdown import write_experiments_body
    path = tmp_path / "body.md"
    write_experiments_body(str(path), ids=["fig26", "table3"])
    text = path.read_text()
    assert "## fig26" in text
    assert "## table3" in text
    with pytest.raises(KeyError):
        write_experiments_body(str(path), ids=["fig99"])


def test_verify_clean_model_exits_zero(capsys):
    assert main(["verify", "tinynet"]) == 0
    out = capsys.readouterr().out
    assert "tinynet" in out
    assert "ok" in out


def test_verify_json_schema(capsys):
    assert main(["verify", "tinynet", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["errors"] == 0
    assert payload["targets"][0]["model"] == "tinynet"
    for block in payload["targets"][0]["reports"]:
        assert {"program", "errors", "warnings", "findings"} <= block.keys()


def test_verify_corrupted_blob_exits_one(capsys, tmp_path):
    blob = tmp_path / "bad.bin"
    blob.write_bytes((0xFFFFFFFF).to_bytes(4, "little") * 3)
    assert main(["verify", str(blob)]) == 1
    out = capsys.readouterr().out
    assert "undecodable-word" in out
    assert "FAIL" in out


def test_verify_compiled_model_dump(capsys, tmp_path):
    dump = tmp_path / "model.json"
    assert main(["compile", "tinynet", "--dump", str(dump)]) == 0
    capsys.readouterr()
    assert main(["verify", str(dump)]) == 0
    assert "ok" in capsys.readouterr().out


def test_verify_missing_file_exits_two(capsys):
    assert main(["verify", "/nonexistent/prog.bin"]) == 2


def test_lint_reports_info_findings(capsys):
    assert main(["lint", "resnet50"]) == 0
    out = capsys.readouterr().out
    assert "resnet50" in out


def test_trace_json_export(capsys, tmp_path):
    out_file = tmp_path / "timeline.json"
    assert main(["trace", "tinynet", "--json", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "gemm" in out and "tandem" in out           # ASCII art still there
    from repro.telemetry.export import validate_trace_file
    payload = validate_trace_file(str(out_file))
    slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert slices and all(e["cat"] == "device" for e in slices)
    assert {e["tid"] for e in slices} <= {0, 1}        # GEMM + Tandem tracks


def test_profile_smoke(capsys, tmp_path):
    out_file = tmp_path / "profile.json"
    assert main(["profile", "tinynet", "--trace-out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "hardware counters" in out
    assert "npu.tandem.busy_cycles" in out
    from repro.telemetry.export import validate_trace_file
    payload = validate_trace_file(str(out_file))
    names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
    assert {"compile", "verify", "simulate"} <= names
    assert any(e.get("cat") == "device" for e in payload["traceEvents"])
    counters = payload["otherData"]["counters"]
    assert counters["npu.tandem.busy_cycles"] > 0
    assert counters["npu.total_cycles"] > 0


def test_serve_trace_out(capsys, tmp_path):
    out_file = tmp_path / "serve.json"
    assert main(["serve", "--model", "tinynet", "--devices", "2",
                 "--rate", "200", "--duration", "0.5",
                 "--trace-out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "per-device utilization" in out
    assert "compile-cache hit rate" in out
    from repro.telemetry.export import validate_trace_file
    payload = validate_trace_file(str(out_file))
    assert any(e.get("cat") == "serving" for e in payload["traceEvents"])
    assert payload["otherData"]["counters"]["serving.requests.offered"] > 0


def test_autotune_smoke(capsys, tmp_path):
    report = tmp_path / "report.json"
    assert main(["autotune", "tinynet", "--budget", "4",
                 "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "pipeline" in out and "best:" in out
    payload = json.loads(report.read_text())
    assert payload["schema"] == "repro-autotune-report-v1"
    assert payload["model"] == "tinynet"
    assert payload["best"]["cycles"] <= payload["baseline_cycles"]
    assert len(payload["candidates"]) <= 4


def test_compile_explain(capsys):
    assert main(["compile", "tinynet", "--explain"]) == 0
    out = capsys.readouterr().out
    assert "pipeline: depth=max/tiles=pow2" in out
    assert "fuse_blocks" in out and "result:" in out


def test_compile_explain_autotuned(capsys):
    assert main(["compile", "tinynet", "--explain", "--autotune"]) == 0
    out = capsys.readouterr().out
    assert "pipeline:" in out
