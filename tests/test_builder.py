"""GraphBuilder shape inference."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import GraphBuilder, conv_out_hw


@pytest.fixture
def b():
    builder = GraphBuilder("t")
    return builder


def test_conv_shape_same_padding(b):
    x = b.input("x", (1, 3, 16, 16))
    y = b.conv(x, 8, 3)
    assert b.spec(y).shape == (1, 8, 16, 16)
    assert b.spec(y).dtype == "int32"


def test_conv_stride_two(b):
    x = b.input("x", (1, 3, 16, 16))
    y = b.conv(x, 8, 3, stride=2)
    assert b.spec(y).shape == (1, 8, 8, 8)


def test_conv_inserts_cast_for_int32_input(b):
    x = b.input("x", (1, 3, 8, 8), dtype="int32")
    b.conv(x, 4, 1, pad=0)
    assert any(n.op_type == "Cast" for n in b.graph.nodes)


def test_conv_no_cast_for_int8_input(b):
    x = b.input("x", (1, 3, 8, 8), dtype="int8")
    b.conv(x, 4, 1, pad=0)
    assert not any(n.op_type == "Cast" for n in b.graph.nodes)


def test_depthwise_preserves_channels(b):
    x = b.input("x", (1, 32, 14, 14), dtype="int32")
    y = b.depthwise_conv(x, 3, stride=2)
    assert b.spec(y).shape == (1, 32, 7, 7)
    node = b.graph.nodes[-1]
    assert node.op_type == "DepthwiseConv"
    assert node.attrs["groups"] == 32


def test_gemm_shape(b):
    x = b.input("x", (1, 128))
    y = b.gemm(x, 10)
    assert b.spec(y).shape == (1, 10)


def test_matmul_batched(b):
    q = b.input("q", (1, 12, 64, 32))
    k = b.input("k", (1, 12, 32, 64))
    s = b.matmul(q, k)
    assert b.spec(s).shape == (1, 12, 64, 64)


def test_matmul_shape_mismatch_rejected(b):
    q = b.input("q", (1, 4, 8))
    k = b.input("k", (1, 7, 4))
    with pytest.raises(ValueError, match="mismatch"):
        b.matmul(q, k)


def test_add_broadcasts(b):
    x = b.input("x", (1, 4, 8, 8), dtype="int32")
    y = b.input("y", (1, 4, 1, 1), dtype="int32")
    z = b.add(x, y)
    assert b.spec(z).shape == (1, 4, 8, 8)


def test_maxpool_with_padding(b):
    x = b.input("x", (1, 4, 8, 8), dtype="int32")
    y = b.maxpool(x, 3, 2, pad=1)
    assert b.spec(y).shape == (1, 4, 4, 4)


def test_global_avgpool(b):
    x = b.input("x", (1, 16, 7, 7), dtype="int32")
    y = b.global_avgpool(x)
    assert b.spec(y).shape == (1, 16, 1, 1)


def test_reduce_mean_keepdims(b):
    x = b.input("x", (1, 8, 64), dtype="int32")
    y = b.reduce_mean(x, axis=-1)
    assert b.spec(y).shape == (1, 8, 1)


def test_softmax_keeps_shape(b):
    x = b.input("x", (2, 5, 7), dtype="int32")
    y = b.softmax(x)
    assert b.spec(y).shape == (2, 5, 7)


def test_transpose(b):
    x = b.input("x", (1, 2, 3, 4), dtype="int32")
    y = b.transpose(x, (0, 3, 1, 2))
    assert b.spec(y).shape == (1, 4, 2, 3)


def test_reshape_rejects_bad_numel(b):
    x = b.input("x", (2, 6), dtype="int32")
    with pytest.raises(ValueError, match="element count"):
        b.reshape(x, (5, 3))


def test_flatten(b):
    x = b.input("x", (1, 4, 3, 3), dtype="int32")
    y = b.flatten(x)
    assert b.spec(y).shape == (1, 36)


def test_concat_axis1(b):
    x = b.input("x", (1, 3, 4, 4), dtype="int32")
    y = b.input("y", (1, 5, 4, 4), dtype="int32")
    z = b.concat([x, y], axis=1)
    assert b.spec(z).shape == (1, 8, 4, 4)


def test_resize_doubles_spatial(b):
    x = b.input("x", (1, 2, 5, 5), dtype="int32")
    y = b.resize(x, 2)
    assert b.spec(y).shape == (1, 2, 10, 10)


def test_cast_changes_dtype_only(b):
    x = b.input("x", (3, 3), dtype="int32")
    y = b.cast(x, "int8")
    assert b.spec(y).dtype == "int8"
    assert b.spec(y).shape == (3, 3)


@given(h=st.integers(4, 64), k=st.sampled_from([1, 3, 5, 7]),
       s=st.sampled_from([1, 2]))
def test_conv_out_hw_matches_numpy_convention(h, k, s):
    pad = k // 2
    oh, _ = conv_out_hw(h, h, (k, k), s, pad)
    assert oh == (h + 2 * pad - k) // s + 1
    assert oh >= 1
