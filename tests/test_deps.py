"""Dependence analysis, race detection, and translation validation.

Covers the four layers of :mod:`repro.analysis.deps`:

* walk algebra (extent, injectivity, overlap) and nest-level
  RAW/WAR/WAW classification, including both PR 6 miscompile
  reproducers rejected *by the dependence analysis itself*;
* translation validation of the compiler's access claims against the
  binary-level abstract interpretation, via seeded metadata mutations;
* the model-level race detector and its dynamic-oracle ground truth
  (clean models replay clean, every seeded race trips both);
* the verifier-pipeline, rule-ID, and CLI surfaces that expose it all.
"""

import copy
import dataclasses

import pytest

from repro.analysis.deps import (
    DepKind,
    Walk,
    boxes_overlap,
    check_model,
    fission_blockers,
    forwarding_claims,
    interchange_blockers,
    is_pointwise_parallel,
    nest_dependences,
    ref_walk,
    run_oracle,
    validate_tile,
    walks_overlap,
)
from repro.analysis.deps.access import ForwardClaim, transfer_elements
from repro.analysis.deps.races import alias_roots
from repro.analysis.verifier import (
    Severity,
    all_rules,
    deps_mode,
    interpret,
    resolve_ignores,
    rule_id,
    rules_table,
    verify_model,
)
from repro.analysis.verifier.findings import Finding, VerifyReport
from repro.analysis.verifier.rules import normalize_rule
from repro.compiler import Nest, Stmt, TRef, compile_model
from repro.isa import AluFunc, Namespace, Opcode
from repro.llm import build_step, get_llm_config
from repro.models import build_model

NS = Namespace.IBUF1


def _stmt(func, dst, src1, src2=None):
    return Stmt(Opcode.ALU, int(func), dst, src1, src2)


# ---------------------------------------------------------------------------
# Walk algebra
# ---------------------------------------------------------------------------
def test_walk_extent_handles_scalars_and_negative_strides():
    assert Walk(5, (), ()).extent == (5, 5)
    assert Walk(0, (8, 1), (4, 8)).extent == (0, 31)
    # A reversed walk reaches below its base.
    assert Walk(7, (-1,), (8,)).extent == (0, 7)


def test_walk_trimmed_drops_degenerate_levels():
    walk = Walk(3, (64, 8, 1), (1, 4, 8))
    assert walk.trimmed() == Walk(3, (8, 1), (4, 8))
    assert walk.same_walk(Walk(3, (99, 8, 1), (1, 4, 8)))
    assert not walk.same_walk(Walk(4, (8, 1), (4, 8)))


def test_walk_injectivity():
    assert Walk(0, (8, 1), (4, 8)).injective()          # mixed radix
    assert not Walk(0, (0,), (10,)).injective()          # stride-0 temp
    assert not Walk(0, (4, 1), (4, 8)).injective()       # rows collide
    assert Walk(0, (-8, 1), (4, 8)).injective()          # sign-agnostic
    assert Walk(9, (), ()).injective()                   # single point


def test_walk_addresses_exact_and_capped():
    addrs = Walk(2, (8, 1), (2, 3)).addresses()
    assert addrs.tolist() == [2, 3, 4, 10, 11, 12]
    assert Walk(0, (1, 1), (1 << 11, 1 << 11)).addresses(cap=1024) is None


def test_walks_overlap_is_interval_conservative():
    a = Walk(0, (1,), (8,))
    assert walks_overlap(a, Walk(7, (1,), (4,)))     # share address 7
    assert not walks_overlap(a, Walk(8, (1,), (4,)))
    # Stride-2 walks that interleave without colliding still "overlap"
    # under the interval test — deliberately conservative (PR 6 parity).
    assert walks_overlap(Walk(0, (2,), (4,)), Walk(1, (2,), (3,)))


def test_boxes_overlap_semantics():
    assert boxes_overlap(None, ((0, 4),))            # None = whole tensor
    assert boxes_overlap(((0, 4),), ((0, 2), (1, 3)))  # rank mismatch
    assert not boxes_overlap(((0, 4), (0, 8)), ((0, 4), (8, 16)))
    assert boxes_overlap(((0, 4), (0, 8)), ((3, 5), (7, 9)))


# ---------------------------------------------------------------------------
# Nest-level dependences and pass legality
# ---------------------------------------------------------------------------
def test_nest_dependences_classifies_raw_war_waw():
    loops = [("i", 8)]
    a = TRef(NS, 0, {"i": 1})
    b = TRef(NS, 8, {"i": 1})
    nest = Nest(loops, [_stmt(AluFunc.ADD, b, a, a),     # reads a, writes b
                        _stmt(AluFunc.MUL, a, b, b)])    # reads b, writes a
    kinds = {(d.kind, d.earlier, d.later) for d in nest_dependences(nest)}
    assert (DepKind.WAR, 0, 1) in kinds   # stmt0 reads a, stmt1 writes a
    assert (DepKind.RAW, 0, 1) in kinds   # stmt0 writes b, stmt1 reads b
    raw = next(d for d in nest_dependences(nest) if d.kind is DepKind.RAW)
    assert raw.same_point and raw.walk == ref_walk(b, loops)


def test_nest_dependences_ignore_disjoint_namespaces_and_imm():
    loops = [("i", 4)]
    x = TRef(NS, 0, {"i": 1})
    y = TRef(Namespace.IBUF2, 0, {"i": 1})   # same base, other scratchpad
    w = TRef(NS, 16, {"i": 1})               # disjoint from x's extent
    k = TRef(Namespace.IMM, 0, {})
    nest = Nest(loops, [_stmt(AluFunc.ADD, y, x, k),
                        _stmt(AluFunc.MUL, w, y, k)])
    kinds = {d.kind for d in nest_dependences(nest)}
    assert kinds == {DepKind.RAW}            # only the y forwarding chain


def test_deps_rejects_pr6_stride0_forwarding_reproducer():
    """PR 6 miscompile #1, rejected by the dependence analysis itself."""
    loops = [("c", 10)]
    x = TRef(NS, 0, {"c": 1})
    temp = TRef(NS, 32, {})                  # per-point stride-0 scratch
    out = TRef(NS, 64, {"c": 1})
    nest = Nest(loops, [_stmt(AluFunc.ADD, temp, x, x),
                        _stmt(AluFunc.MUL, out, temp, temp)])
    blockers = fission_blockers(nest)
    assert any("non-injective" in b for b in blockers)


def test_fission_blockers_empty_for_injective_forwarding():
    loops = [("i", 4), ("j", 8)]
    x = TRef(NS, 0, {"i": 8, "j": 1})
    temp = TRef(NS, 32, {"i": 8, "j": 1})
    out = TRef(NS, 64, {"i": 8, "j": 1})
    nest = Nest(loops, [_stmt(AluFunc.ADD, temp, x, x),
                        _stmt(AluFunc.MUL, out, temp, temp)])
    assert fission_blockers(nest) == []
    parts = [Nest(loops, [stmt]) for stmt in nest.body]
    # One claim per read of the temp (src1 and src2 both consume it).
    claims = forwarding_claims(nest, parts)
    assert claims
    for producer, consumer, walk in claims:
        assert producer is parts[0] and consumer is parts[1]
        assert walk == ref_walk(temp, loops) and walk.injective()


def test_interchange_blockers():
    loops = [("i", 4), ("j", 8)]
    x = TRef(NS, 0, {"i": 8, "j": 1})
    acc = TRef(NS, 64, {})
    parallel = Nest(loops, [_stmt(AluFunc.ADD, x, x, x)])
    reduction = Nest(loops, [_stmt(AluFunc.ADD, acc, acc, x)])
    assert interchange_blockers(parallel, [1, 0]) == []
    assert interchange_blockers(parallel, [0, 0])    # not a permutation
    assert is_pointwise_parallel(parallel)
    assert not is_pointwise_parallel(reduction)
    assert interchange_blockers(reduction, [1, 0])


# ---------------------------------------------------------------------------
# Compiled-model fixtures (deepcopied before any mutation: the compile
# cache shares LoweredTile objects between calls)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tinynet_model():
    return compile_model(build_model("tinynet"), verify=False)


@pytest.fixture(scope="module")
def decode_model():
    step = build_step(get_llm_config("tinyllm"), past_len=4, n_new=1)
    return compile_model(step.graph, verify=False)


def _mutable(model):
    return copy.deepcopy(model)


# ---------------------------------------------------------------------------
# Translation validation
# ---------------------------------------------------------------------------
def test_clean_compile_validates_exactly(tinynet_model):
    for cb in tinynet_model.blocks:
        if cb.tile is None:
            continue
        assert cb.tile.access_meta is not None
        assert validate_tile(cb.tile, interpret(cb.tile.program)) == []


def test_mutated_stride_claim_is_a_translation_mismatch(tinynet_model):
    model = _mutable(tinynet_model)
    tile = next(cb.tile for cb in model.blocks if cb.tile is not None)
    meta = tile.access_meta.to_dict()
    # Bump one operand stride: the IR now claims a walk the binary
    # does not perform.
    meta["nests"][0]["stmts"][0][0][3][0] += 1
    tile.access_meta = type(tile.access_meta).from_dict(meta)
    findings = validate_tile(tile, interpret(tile.program))
    assert findings and all(f.severity is Severity.ERROR for f in findings)
    assert findings[0].rule == "translation-mismatch"
    assert findings[0].rule_id == "DEP001"


def test_tampered_transfer_binding_is_flagged(tinynet_model):
    model = _mutable(tinynet_model)
    tile = next(cb.tile for cb in model.blocks if cb.tile is not None)
    slot = tile.transfers[0]
    tile.transfers[0] = dataclasses.replace(slot, tensor="somewhere_else")
    findings = validate_tile(tile, interpret(tile.program))
    assert any("transfer binding" in f.message and "tensor" in f.message
               for f in findings)


def test_forged_noninjective_claim_is_rejected(tinynet_model):
    model = _mutable(tinynet_model)
    tile = next(cb.tile for cb in model.blocks if cb.tile is not None)
    meta = tile.access_meta
    nest = meta.nests[0]
    meta.claims.append(ForwardClaim(
        producer=nest.event, consumer=nest.event, ns=NS.name, base=0,
        strides=(0,) * len(nest.counts), counts=tuple(nest.counts)))
    findings = validate_tile(tile, interpret(tile.program))
    assert any(f.rule == "claim-noninjective" and f.rule_id == "DEP002"
               for f in findings)


def test_transfer_elements_mirrors_lowering():
    from repro.compiler.ir import TransferSlot
    slot = TransferSlot(direction="ld", tensor="x", ns=NS, base=0,
                        elements=1152)
    assert transfer_elements(slot) == 1152
    # With a halo-padded pre_reshape the binary walks the padded box.
    padded = dataclasses.replace(slot, pre_reshape=(2, 28, 28))
    assert transfer_elements(padded) == 2 * 28 * 28


# ---------------------------------------------------------------------------
# Model-level races: static detector vs dynamic oracle
# ---------------------------------------------------------------------------
def test_zoo_and_decode_models_are_statically_and_dynamically_clean(
        tinynet_model, decode_model):
    for model in (tinynet_model, decode_model):
        assert check_model(model) == []
        assert run_oracle(model).clean


def test_alias_roots_resolve_cache_appends(decode_model):
    roots = alias_roots(decode_model.graph)
    assert roots            # every decode layer appends in place
    for alias, root in roots.items():
        assert root.startswith(("k_cache_", "v_cache_"))
        assert alias != root


def test_block_crossing_rename_is_rejected_without_adhoc_checks(
        tinynet_model):
    """PR 6 miscompile #2: a load of renamed, never-materialized DRAM."""
    model = _mutable(tinynet_model)
    # Retarget block 1's load to a tensor only block 2 produces: exactly
    # what a rename escaping its block without materialization looks like.
    victim = model.blocks[1].tile
    idx = next(i for i, s in enumerate(victim.transfers)
               if s.direction == "ld")
    later_store = model.blocks[2].tile.transfers[-1].tensor
    victim.transfers[idx] = dataclasses.replace(
        victim.transfers[idx], tensor=later_store)
    findings = check_model(model)
    assert any(f.rule == "dram-undef-read" and f.rule_id == "DEP003"
               for f in findings)
    verdict = run_oracle(model)
    assert verdict.undef_reads and not verdict.clean


def test_seeded_overlapping_cache_append_is_flagged_by_both(decode_model):
    model = _mutable(decode_model)
    for cb in model.blocks:
        if cb.tile is None:
            continue
        appends = [s for s in cb.tile.transfers
                   if s.direction == "st" and s.region is not None]
        if appends:
            # A second store claiming the same slice of the same cache.
            cb.tile.transfers.append(dataclasses.replace(appends[0]))
            break
    else:
        pytest.fail("decode model has no in-place append store")
    findings = check_model(model)
    assert any(f.rule == "cache-alias-overlap" and f.rule_id == "DEP004"
               for f in findings)
    assert run_oracle(model).alias_overlaps


def test_seeded_out_of_bounds_append_is_flagged_by_both(decode_model):
    model = _mutable(decode_model)
    for cb in model.blocks:
        if cb.tile is None:
            continue
        for i, slot in enumerate(cb.tile.transfers):
            if slot.direction == "st" and slot.region is not None:
                shape = model.graph.tensor(slot.tensor).shape
                region = list(slot.region)
                dim, (start, _stop) = next(
                    (d, r) for d, r in enumerate(region))
                region[dim] = (start, shape[dim] + 7)
                cb.tile.transfers[i] = dataclasses.replace(
                    slot, region=tuple(region))
                findings = check_model(model)
                assert any(f.rule == "cache-append-oob"
                           and f.rule_id == "DEP005" for f in findings)
                assert run_oracle(model).alias_overlaps
                return
    pytest.fail("decode model has no in-place append store")


def test_stale_read_before_append_is_flagged_by_both(decode_model):
    model = _mutable(decode_model)
    for cb in model.blocks:
        if cb.tile is None:
            continue
        transfers = cb.tile.transfers
        st_idx = next((i for i, s in enumerate(transfers)
                       if s.direction == "st" and s.region is not None),
                      None)
        if st_idx is None:
            continue
        root = alias_roots(model.graph).get(transfers[st_idx].tensor,
                                            transfers[st_idx].tensor)
        ld_idx = next((i for i, s in enumerate(transfers)
                       if i > st_idx and s.direction == "ld"
                       and alias_roots(model.graph).get(s.tensor, s.tensor)
                       == root), None)
        if ld_idx is None:
            continue
        # The DAE queue is in-order: move the append store *after* the
        # load that consumes the updated cache — the load now observes
        # the stale slice.
        slot = transfers.pop(st_idx)
        transfers.insert(ld_idx, slot)
        findings = check_model(model)
        assert any(f.rule == "cache-alias-overlap"
                   and "queued before" in f.message for f in findings)
        assert run_oracle(model).alias_overlaps
        return
    pytest.fail("no append store followed by a same-root load")


# ---------------------------------------------------------------------------
# Verifier pipeline + rule registry
# ---------------------------------------------------------------------------
def test_verify_model_runs_deps_pass_and_model_report(tinynet_model):
    report = verify_model(tinynet_model, deps="strict")
    assert report.errors == 0
    tile_reports = [r for r in report.reports
                    if not r.program.endswith("::model")]
    assert all("deps" in r.passes for r in tile_reports)
    model_report = next(r for r in report.reports
                        if r.program.endswith("::model"))
    assert model_report.passes == ["deps"]


def test_deps_mode_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_DEPS", raising=False)
    assert deps_mode() == "on"
    monkeypatch.setenv("REPRO_DEPS", "off")
    assert deps_mode() == "off"
    monkeypatch.setenv("REPRO_DEPS", "strict")
    assert deps_mode() == "strict"
    # An explicit override out-ranks the environment.
    assert deps_mode("strict") == "strict"
    monkeypatch.setenv("REPRO_DEPS", "0")
    assert deps_mode() == "off"


def test_rule_registry_is_stable_and_complete():
    rules = all_rules()
    ids = [r.id for r in rules]
    names = [r.name for r in rules]
    assert len(set(ids)) == len(ids)
    assert len(set(names)) == len(names)
    for expected in ("DEP001", "DEP002", "DEP003", "DEP004", "DEP005",
                     "DEP006"):
        assert expected in ids
    assert rule_id("translation-mismatch") == "DEP001"
    assert rule_id("dram-undef-read") == "DEP003"
    assert rule_id("not-a-rule") is None


def test_normalize_and_resolve_ignores():
    assert normalize_rule("dep003") == "dram-undef-read"
    assert normalize_rule("DEP003") == "dram-undef-read"
    assert normalize_rule("dead-store") == "dead-store"
    assert normalize_rule("nope") is None
    assert resolve_ignores(["DEP004", "dead-store"]) == [
        "cache-alias-overlap", "dead-store"]
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_ignores(["BOGUS999"])


def test_report_suppress_drops_by_rule():
    report = VerifyReport(program="p", passes=["deps"], findings=[
        Finding(severity=Severity.ERROR, rule="dram-undef-read",
                message="a"),
        Finding(severity=Severity.INFO, rule="dead-store", message="b"),
    ])
    assert report.errors == 1
    assert report.suppress(["dram-undef-read"]) == 1
    assert report.errors == 0 and report.infos == 1


def test_rules_table_lists_every_rule():
    table = rules_table()
    for rule in all_rules():
        assert rule.id in table and f"`{rule.name}`" in table


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
def test_cli_verify_decode_target_with_deps(capsys):
    from repro.cli import main
    assert main(["verify", "tinyllm:decode", "--deps", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_ignore_unknown_rule_is_an_error(capsys):
    from repro.cli import main
    assert main(["lint", "tinynet", "--ignore", "NOPE123"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_ignore_suppresses_findings(capsys):
    from repro.cli import main
    # gpt2 lint reports dead-store infos; --ignore must remove them.
    assert main(["lint", "gpt2", "--ignore", "LNT001",
                 "--ignore", "LNT003"]) == 0
    out = capsys.readouterr().out
    assert "dead-store" not in out


def test_cli_docs_rules_stdout(capsys):
    from repro.cli import main
    assert main(["docs", "--rules", "--stdout"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# Verifier rule reference")
    assert "DEP001" in out
