"""Figure 25: Tandem energy — loop+addr logic is the largest component."""

from conftest import measured, within


def test_fig25(exp):
    experiment = exp("fig25")
    within(experiment, "dram_share", rel=0.35)
    within(experiment, "loop_addr_share", rel=0.35)
    within(experiment, "alu_share", rel=0.50)
    within(experiment, "on_chip_sram_share", rel=0.50)
    assert measured(experiment, "loop_addr_is_largest_logic") is True
