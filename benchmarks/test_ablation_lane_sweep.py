"""Ablation: SIMD lane count sweep (beyond the paper's fixed 32 lanes)."""

from dataclasses import replace

import pytest

from repro.npu import NPUTandem, table3_config
from repro.simulator.params import SimParams


def _config_with_lanes(lanes):
    base = table3_config()
    tandem = replace(base.sim.tandem, lanes=lanes)
    return replace(base, sim=SimParams(tandem=tandem, dram=base.sim.dram,
                                       energy=base.sim.energy,
                                       overlay=base.sim.overlay))


def _sweep():
    results = {}
    for lanes in (8, 16, 32, 64):
        npu = NPUTandem(_config_with_lanes(lanes))
        results[lanes] = npu.evaluate("mobilenetv2").total_seconds
    return results


def test_lane_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # More lanes -> faster non-GEMM execution, with diminishing returns.
    assert results[8] > results[16] > results[32]
    gain_8_16 = results[8] / results[16]
    gain_32_64 = results[32] / results[64]
    assert gain_8_16 > gain_32_64
