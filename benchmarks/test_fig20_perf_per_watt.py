"""Figure 20: 4.8x perf/W vs Jetson Xavier NX."""

from conftest import measured, within


def test_fig20(exp):
    experiment = exp("fig20")
    within(experiment, "avg_perf_per_watt_vs_jetson", rel=0.50)
    within(experiment, "rtx_vs_jetson_efficiency", rel=0.50)
    assert measured(experiment, "mobilenetv2_max_benefit") is True
