"""Figure 16: 47.8x vs Gemmini, 5.9x vs its 32-core scale-up."""

from conftest import measured, within


def test_fig16(exp):
    experiment = exp("fig16")
    within(experiment, "avg_speedup_vs_gemmini", rel=0.40)
    within(experiment, "avg_speedup_vs_gemmini_multicore", rel=0.60)
    within(experiment, "multicore_gemmini_self_improvement", rel=0.60)
    # The extremes land on the same models the paper reports.
    assert measured(experiment, "max_multicore_speedup_model") == "mobilenetv2"
    assert measured(experiment, "min_multicore_speedup_model") == "vgg16"
