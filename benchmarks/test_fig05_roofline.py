"""Figure 5: most non-GEMM operators are memory-bound."""

from conftest import measured


def test_fig05(exp):
    experiment = exp("fig05")
    assert measured(experiment, "memory_bound_ops_match") is True
    assert measured(experiment, "softmax_gelu_compute_bound") is True
