"""Figure 14: 3.5x over Baseline 1, 2.7x over Baseline 2 (paper avgs)."""

from conftest import measured, within


def test_fig14(exp):
    experiment = exp("fig14")
    within(experiment, "avg_speedup_vs_baseline1", rel=0.35)
    within(experiment, "avg_speedup_vs_baseline2", rel=0.35)
    # MobileNetV2 and BERT are among the biggest winners vs Baseline 1.
    assert measured(experiment, "mobilenetv2_speedup_vs_baseline1") > 3.0
    assert measured(experiment, "bert_speedup_vs_baseline1") > 2.5
