"""Figure 23: 3.4x non-GEMM-only speedup over A100 CUDA cores."""

from conftest import measured, within


def test_fig23(exp):
    experiment = exp("fig23")
    within(experiment, "avg_nongemm_speedup_vs_a100", rel=0.40)
    assert measured(experiment, "bert_is_max") is True
    assert measured(experiment, "gpt2_below_bert (bandwidth bound)") is True
