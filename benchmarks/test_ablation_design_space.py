"""Ablation: GeneSys-style design-space exploration (lanes x buffers)."""

from repro.analysis import pareto_frontier, sweep


def _explore():
    results = sweep("efficientnet", lanes=(16, 32, 64),
                    interim_buf_kb=(32, 64))
    return results, pareto_frontier(results)


def test_design_space(benchmark):
    results, frontier = benchmark.pedantic(_explore, rounds=1, iterations=1)
    assert len(results) == 6
    assert 1 <= len(frontier) <= len(results)
    # The Table 3 point (32 lanes / 64 KB) is never dominated by a
    # smaller configuration on this non-GEMM-heavy model.
    table3 = next(r for r in results
                  if r.point.lanes == 32 and r.point.interim_buf_kb == 64)
    smaller = next(r for r in results
                   if r.point.lanes == 16 and r.point.interim_buf_kb == 32)
    assert table3.seconds <= smaller.seconds
