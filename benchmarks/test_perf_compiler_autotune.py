"""Autotuned pass-pipeline search: cycle wins, warm cache, determinism.

Runs ``python -m repro autotune`` over the model zoo against one cache
directory: once cold (every candidate compiled and scored) and once warm
(the whole report served from the content-addressed cache). The searched
pipelines must beat the fixed seed flow by >= 5% geomean cycles with
every winner verifier-clean, the warm re-search must be >= 5x faster,
and a serial re-run must produce byte-identical reports to a ``--jobs``
run. The measured numbers land in ``BENCH_compiler_autotune.json`` at
the repo root so the perf trajectory is visible across PRs.
"""

import json
import math
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
MODELS = ("bert", "efficientnet", "gpt2", "mobilenetv2", "resnet50",
          "tinynet", "vgg16", "yolov3")
BUDGET = 16
BENCH_ARTIFACT = REPO_ROOT / "BENCH_compiler_autotune.json"


def _autotune(cache_dir, model, report_path, jobs=4):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    start = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "autotune", model,
         "--budget", str(BUDGET), "--jobs", str(jobs),
         "--json", str(report_path)],
        capture_output=True, env=env, cwd=REPO_ROOT, check=True)
    return time.perf_counter() - start


def test_autotune_beats_fixed_flow_and_caches(tmp_path):
    cache_dir = tmp_path / "repro_cache"

    cold_seconds = 0.0
    reports = {}
    for model in MODELS:
        path = tmp_path / f"cold-{model}.json"
        cold_seconds += _autotune(cache_dir, model, path)
        reports[model] = path.read_text()

    warm_seconds = 0.0
    for model in MODELS:
        path = tmp_path / f"warm-{model}.json"
        warm_seconds += _autotune(cache_dir, model, path)
        # The cached report must be byte-identical to the cold search.
        assert path.read_text() == reports[model], model

    # Search determinism: a serial cold run in a fresh cache equals the
    # --jobs run (candidate batches are fixed before dispatch and the
    # winner is chosen by (cycles, submission order)).
    serial_path = tmp_path / "serial-efficientnet.json"
    _autotune(tmp_path / "serial_cache", "efficientnet", serial_path,
              jobs=1)
    assert serial_path.read_text() == reports["efficientnet"]

    ratios = {}
    for model in MODELS:
        payload = json.loads(reports[model])
        best = payload["best"]
        assert best["cycles"] <= payload["baseline_cycles"], model
        # The winner was compiled with verify=True during scoring: its
        # candidate entry must be a clean "ok", never "verify-rejected".
        winner = [c for c in payload["candidates"]
                  if c["config"] == best["config"]]
        assert winner and all(c["status"] == "ok" for c in winner), model
        ratios[model] = best["cycles"] / payload["baseline_cycles"]

    geomean = math.exp(sum(math.log(r) for r in ratios.values())
                       / len(ratios))

    BENCH_ARTIFACT.write_text(json.dumps({
        "models": list(MODELS),
        "budget": BUDGET,
        "cycle_ratio": {m: round(r, 4) for m, r in sorted(ratios.items())},
        "best_pipeline": {
            m: json.loads(reports[m])["best"]["label"] for m in MODELS},
        "geomean_cycle_ratio": round(geomean, 4),
        "geomean_cycle_reduction_pct": round((1 - geomean) * 100, 2),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "speedup_warm_over_cold": round(cold_seconds / warm_seconds, 2),
    }, indent=2) + "\n")

    assert geomean <= 0.95, (
        f"autotuned geomean cycle ratio {geomean:.4f} misses the 5% bar")
    assert warm_seconds * 5 <= cold_seconds, (
        f"warm re-search {warm_seconds:.2f}s not 5x faster than "
        f"cold {cold_seconds:.2f}s")
