"""Figure 2: cumulative usage; GEMM nodes are a small minority."""

from conftest import measured


def test_fig02(exp):
    experiment = exp("fig02")
    assert measured(experiment, "gemm_fraction_all_models") < 0.25
    assert measured(experiment, "nongemm_surges_with_new_models") is True
