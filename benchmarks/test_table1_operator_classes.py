"""Table 1: non-GEMM operator classes across the benchmark suite."""

from conftest import measured


def test_table1(exp):
    experiment = exp("table1")
    # The compiler has a template for every operator example Table 1
    # names, in every class.
    for metric, (paper, got) in experiment.summary.items():
        assert got == paper, metric
