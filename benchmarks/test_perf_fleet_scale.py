"""Scaled fleet-core throughput + autoscale economics → BENCH_fleet_scale.json.

Three pinned claims on one seeded 1000-device diurnal day:

* **event-core speedup** — the interned-record core
  (:class:`repro.serving.scale.ScaledFleetSimulator`) must simulate at
  least ``SPEEDUP_FLOOR`` (50×) more requests per wall-second than the
  legacy per-request-object :class:`~repro.serving.fleet.FleetSimulator`
  on the same 1000-device fleet under ``least_loaded`` routing.  The
  legacy side runs a shorter prefix of the same diurnal shape (its rate
  is per-request, so the shorter trace does not flatter it) to keep the
  benchmark interactive.
* **bit-identity** — with ``cells=1`` and autoscaling off, the scaled
  core's report is byte-identical to the legacy fleet's at small scale,
  and scale points are byte-identical between serial and ``--jobs 2``.
* **autoscale economics** — on a 64-device diurnal day, the autoscaled
  fleet's tail-latency-bounded throughput per dollar is strictly better
  than the same fleet kept statically at peak size, with p99 still
  inside the tightest SLO.

Wall-clock rates land only in ``BENCH_fleet_scale.json`` (never in the
deterministic ``repro-fleet-scale-report-v1`` payloads).
"""

import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_ARTIFACT = REPO_ROOT / "BENCH_fleet_scale.json"

#: Pinned scenario seed (a fixed trace, not a property over all seeds).
SEED = "12345"
SPEEDUP_FLOOR = 50.0
DEVICES = 1000
CELLS = 125
PEAK_RPS = 4000.0
DURATION_S = 20.0
LEGACY_DURATION_S = 2.0


def _day(duration_s, peak_rps=PEAK_RPS):
    from repro.serving import DiurnalTrace
    return DiurnalTrace(("bert", "resnet50"), peak_rps, duration_s,
                        trough_fraction=0.2)


def test_event_core_speedup_and_bit_identity(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_SEED", SEED)
    from repro.runtime import parallel_map
    from repro.serving import (
        AutoscaleConfig,
        FleetSimulator,
        OpenLoopPoisson,
        ScaledFleetSimulator,
        ScalePoint,
        ServiceCosts,
        run_scale_point,
        tail_bounded_throughput,
        validate_fleet_scale_report,
    )

    costs = ServiceCosts.resolve(["bert", "resnet50"])
    models = ("bert", "resnet50")

    # -- 1000-device diurnal day through the scaled core ---------------
    trace = _day(DURATION_S)
    requests = len(trace.initial())
    sim = ScaledFleetSimulator(costs, devices=DEVICES, cells=CELLS,
                               routing="least_loaded")
    report = benchmark.pedantic(lambda: sim.run(trace, rate_rps=PEAK_RPS),
                                rounds=1, iterations=1)
    assert report.completed == requests
    assert validate_fleet_scale_report(sim.payload) == []
    events = sim.payload["sim"]["events"]

    # -- the legacy core on a prefix of the same diurnal shape ---------
    # The speedup is a ratio of two wall-clock rates, so a CPU-load
    # spike that lands on only one side skews it badly.  Time the two
    # cores back to back in pairs (the pedantic round above already
    # paid the scaled core's cold start) and pin the best pair.
    short = _day(LEGACY_DURATION_S)
    short_requests = len(short.initial())
    legacy_sim = FleetSimulator(costs, devices=DEVICES,
                                routing="least_loaded")
    speedup = 0.0
    scaled_rate = legacy_rate = 0.0
    for _ in range(3):
        start = time.perf_counter()
        sim.run(trace, rate_rps=PEAK_RPS)
        pair_scaled = requests / (time.perf_counter() - start)
        start = time.perf_counter()
        legacy_sim.run(short, rate_rps=PEAK_RPS)
        pair_legacy = short_requests / (time.perf_counter() - start)
        if pair_scaled / pair_legacy > speedup:
            speedup = pair_scaled / pair_legacy
            scaled_rate, legacy_rate = pair_scaled, pair_legacy
    assert speedup >= SPEEDUP_FLOOR, (
        f"scaled core {scaled_rate:,.0f} req/s vs legacy "
        f"{legacy_rate:,.0f} req/s = {speedup:.1f}x "
        f"(floor {SPEEDUP_FLOOR:.0f}x)")

    # -- bit-identity at small scale, autoscaling off -------------------
    legacy = FleetSimulator(costs, devices=4).run(
        OpenLoopPoisson(models, 60.0, 4.0), rate_rps=60.0)
    scaled = ScaledFleetSimulator(costs, devices=4).run(
        OpenLoopPoisson(models, 60.0, 4.0), rate_rps=60.0)
    bit_identical = legacy.to_json() == scaled.to_json()
    assert bit_identical

    # -- serial vs --jobs, byte for byte --------------------------------
    points = [ScalePoint(costs=costs, models=models, devices=32, cells=4,
                         peak_rps=800.0, duration_s=2.0,
                         autoscale=bool(i % 2), stream=i)
              for i in range(4)]
    serial = parallel_map(run_scale_point, points, jobs=1)
    forked = parallel_map(run_scale_point, points, jobs=2)
    jobs_identical = (json.dumps(serial, sort_keys=True)
                      == json.dumps(forked, sort_keys=True))
    assert jobs_identical

    # -- autoscale economics on a 64-device day -------------------------
    day = _day(8.0, peak_rps=2400.0)
    static_sim = ScaledFleetSimulator(costs, devices=64, cells=8,
                                      routing="round_robin")
    static = static_sim.run(day, rate_rps=2400.0)
    auto_sim = ScaledFleetSimulator(
        costs, devices=64, cells=8, routing="round_robin",
        autoscale=AutoscaleConfig(interval_s=0.1, min_cells=2,
                                  cooldown_s=1.0, queue_high=1.0,
                                  queue_low=0.2))
    auto = auto_sim.run(day, rate_rps=2400.0)
    static_pay, auto_pay = static_sim.payload, auto_sim.payload
    auto_per_dollar = auto_pay["slo"]["bounded_throughput_per_dollar"]
    static_per_dollar = static_pay["slo"]["bounded_throughput_per_dollar"]
    assert auto_per_dollar > static_per_dollar, (
        f"autoscaled {auto_per_dollar:.0f}/$ not better than static "
        f"{static_per_dollar:.0f}/$")
    assert auto.p99_ms <= min(auto.slo_ms.values())
    assert auto_pay["autoscale_events"], "the day provoked no scaling"

    BENCH_ARTIFACT.write_text(json.dumps({
        "devices": DEVICES,
        "cells": CELLS,
        "model": "bert+resnet50",
        "peak_rps": PEAK_RPS,
        "duration_s": DURATION_S,
        "trough_fraction": 0.2,
        "routing": "least_loaded",
        "seed": int(SEED),
        "requests": requests,
        "events": events,
        "event_rate_legacy_rps": round(legacy_rate, 1),
        "event_rate_scaled_rps": round(scaled_rate, 1),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "legacy_prefix_s": LEGACY_DURATION_S,
        "bit_identical": bit_identical,
        "serial_vs_jobs_identical": jobs_identical,
        "autoscale": {
            "devices": 64,
            "cells": 8,
            "peak_rps": 2400.0,
            "duration_s": 8.0,
            "static_dollars": round(static_pay["cost"]["dollars"], 4),
            "autoscaled_dollars": round(auto_pay["cost"]["dollars"], 4),
            "savings_fraction": round(
                auto_pay["cost"]["savings_fraction"], 4),
            "static_bounded_per_dollar": round(static_per_dollar, 1),
            "autoscaled_bounded_per_dollar": round(auto_per_dollar, 1),
            "static_p99_ms": round(static.p99_ms, 3),
            "autoscaled_p99_ms": round(auto.p99_ms, 3),
            "scale_events": len(auto_pay["autoscale_events"]),
        },
    }, indent=2) + "\n")


def test_fleet_scale_experiment_shapes(benchmark):
    """The registered harness experiment reports every shape as met."""
    from repro.harness import run_experiment
    experiment = benchmark.pedantic(run_experiment, args=("fleet_scale",),
                                    rounds=1, iterations=1)
    for metric, (expected, got) in experiment.summary.items():
        if expected is True:
            assert got is True, f"{metric}: expected True, measured {got}"
    slo_ms, p99_ms = experiment.summary["autoscaled_p99_within_slo_ms"]
    assert 0.0 < p99_ms <= slo_ms
    rendered = experiment.render()
    assert "bounded" in rendered
    assert "scale-out" in rendered or "scale-outs" in rendered
