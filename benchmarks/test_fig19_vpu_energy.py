"""Figure 19: 1.4x energy reduction vs TPU+VPU."""

from conftest import measured, within


def test_fig19(exp):
    experiment = exp("fig19")
    within(experiment, "avg_energy_reduction_vs_vpu", rel=0.50)
    # MobileNetV2 benefits most; VGG-16 least (paper's per-model shape).
    assert (measured(experiment, "mobilenetv2")
            > measured(experiment, "vgg16"))
    assert measured(experiment, "avg_energy_reduction_vs_vpu") > 1.0
