"""Figure 1: non-GEMM operator diversity grows over model generations."""

from conftest import measured


def test_fig01(exp):
    experiment = exp("fig01")
    assert measured(experiment, "diversity_grows_over_time") is True
    assert measured(experiment, "first_gen_nongemm_types (VGG-16 ~3)") <= 5
    assert measured(experiment, "language_model_nongemm_types (~10)") >= 10
