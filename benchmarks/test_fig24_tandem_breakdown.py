"""Figure 24: per-layer-type runtime breakdown on the NPU-Tandem."""

from conftest import measured


def test_fig24(exp):
    experiment = exp("fig24")
    assert measured(
        experiment, "depthwise_dominates_mobilenetv2_nongemm") is True
    assert measured(experiment, "gelu_or_softmax_heavy_in_bert") is True
    assert measured(experiment, "reducemean_visible_in_gpt2") is True
    assert measured(experiment, "gemm_significant_share_on_npu") is True
    # Breakdown fractions now come from the npu.* telemetry counters;
    # the experiment cross-checks them against the analytic per-op times.
    assert measured(experiment, "counters_agree_with_analytic") is True
