"""Shared helpers for the per-figure benchmark suite.

Each benchmark regenerates one paper table/figure through
``repro.harness.run_experiment`` and asserts the *shape* of the result:
who wins, rough factors, crossovers. Absolute numbers are expected to
deviate (the substrate is a Python simulator, not the authors' testbed);
EXPERIMENTS.md records paper-vs-measured for every metric.
"""

import pytest

from repro.runtime import EvalCache, set_cache


@pytest.fixture(scope="session", autouse=True)
def _isolated_eval_cache(tmp_path_factory):
    """Session-private runtime cache (hermetic, keeps the tree clean)."""
    set_cache(EvalCache(directory=tmp_path_factory.mktemp("repro_cache")))
    yield
    set_cache(None)


def run_once(benchmark, exp_id):
    """Run an experiment exactly once under pytest-benchmark timing."""
    from repro.harness import run_experiment
    return benchmark.pedantic(run_experiment, args=(exp_id,),
                              rounds=1, iterations=1)


def measured(experiment, metric):
    return experiment.summary[metric][1]


def within(experiment, metric, rel):
    """Measured value within a relative band of the paper's value."""
    paper, got = experiment.summary[metric]
    assert paper, f"{metric}: paper value is zero"
    ratio = got / paper
    assert 1 / (1 + rel) <= ratio <= 1 + rel, (
        f"{metric}: paper={paper} measured={got} (ratio {ratio:.2f})")


@pytest.fixture
def exp(benchmark):
    def runner(exp_id):
        return run_once(benchmark, exp_id)
    return runner
