"""Figure 6: overheads removed by the three Tandem specializations."""

from conftest import within


def test_fig06(exp):
    experiment = exp("fig06")
    # Paper: (a) 41%/27%, (b) 59%/40%, (c) 70%/47%.
    for metric in ("regfile_ldst_nongemm", "regfile_ldst_e2e",
                   "address_calc_nongemm", "address_calc_e2e",
                   "loop_logic_nongemm", "loop_logic_e2e"):
        within(experiment, metric, rel=0.35)
    # Ordering: loop logic > address calc > regfile (non-GEMM view).
    s = experiment.summary
    assert s["loop_logic_nongemm"][1] > s["address_calc_nongemm"][1] \
        > s["regfile_ldst_nongemm"][1]
