"""Serving-layer shape assertions + the BENCH_serving.json artifact.

Runs the ``serving_sweep`` grid (batch policy x fleet size x arrival
rate over BERT) and asserts the latency-throughput picture the TPU
paper's 99th-percentile-SLO argument predicts:

* past the saturation knee, p99 latency rises *superlinearly* in the
  offered rate (knee sharpness >> 1);
* larger fleets sustain strictly higher max throughput at a fixed SLO;
* dynamic batching outserves single-request serving at peak load;
* identical seeds give byte-identical sweep output, serial vs --jobs N.

The measured numbers land in ``BENCH_serving.json`` at the repo root so
the serving-capacity trajectory is visible across PRs.
"""

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_ARTIFACT = REPO_ROOT / "BENCH_serving.json"
SLO_ATTAINMENT = 0.95


def _sweep():
    from repro.serving import ServiceCosts, default_grid, run_sweep
    costs = ServiceCosts.resolve(["bert"])
    points = default_grid(costs=costs)
    return points, run_sweep(points, jobs=1)


def test_latency_throughput_knee_and_fleet_scaling(benchmark):
    from repro.serving import (
        by_config,
        knee_sharpness,
        max_throughput_at_slo,
        run_sweep,
        sweep_table,
    )
    points, reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    ladders = by_config(reports)

    # p99 must rise superlinearly past saturation: latency growth
    # outpaces rate growth by a wide margin on every saturated ladder.
    knees = {}
    for fleet in (1, 2, 4):
        ladder = ladders[("dynamic", fleet)]
        assert ladder[-1].p99_ms > ladder[0].p99_ms, (
            f"fleet {fleet}: p99 did not rise with offered rate")
        knees[fleet] = knee_sharpness(ladder)
    assert knees[1] > 2.0, (
        f"1-device p99 growth is not superlinear (sharpness {knees[1]:.2f})")

    # Larger fleets sustain strictly higher max throughput at the SLO.
    capacity = {fleet: max_throughput_at_slo(ladders[("dynamic", fleet)],
                                             SLO_ATTAINMENT)
                for fleet in (1, 2, 4)}
    assert capacity[1] > 0
    assert capacity[2] > capacity[1], capacity
    assert capacity[4] > capacity[2], capacity

    # Dynamic batching must beat single-request serving once saturated.
    single_peak = ladders[("single", 1)][-1].throughput_rps
    dynamic_peak = ladders[("dynamic", 1)][-1].throughput_rps
    assert dynamic_peak > 1.2 * single_peak, (single_peak, dynamic_peak)

    # Determinism: a --jobs run must be byte-identical to the serial one.
    serial_table = sweep_table(reports)
    parallel_table = sweep_table(run_sweep(points, jobs=2))
    assert parallel_table == serial_table

    BENCH_ARTIFACT.write_text(json.dumps({
        "model": "bert",
        "grid": {
            "policies": sorted({r.batch_policy for r in reports}),
            "fleets": sorted({r.devices for r in reports}),
            "rates_rps": sorted({r.rate_rps for r in reports}),
        },
        "slo_attainment_bar": SLO_ATTAINMENT,
        "max_throughput_at_slo_rps": {
            str(fleet): round(capacity[fleet], 2) for fleet in capacity},
        "knee_sharpness_dynamic": {
            str(fleet): round(knees[fleet], 2) for fleet in knees},
        "single_device_peak_rps": {
            "single": round(single_peak, 2),
            "dynamic": round(dynamic_peak, 2),
        },
    }, indent=2) + "\n")


def test_serving_sweep_experiment_shapes(benchmark):
    """The registered harness experiment reports every shape as met."""
    from repro.harness import run_experiment
    experiment = benchmark.pedantic(run_experiment, args=("serving_sweep",),
                                    rounds=1, iterations=1)
    for metric, (expected, got) in experiment.summary.items():
        if expected is True:
            assert got is True, f"{metric}: expected True, measured {got}"
    rendered = experiment.render()
    assert "p99 (ms)" in rendered
    assert "SLO attain" in rendered
