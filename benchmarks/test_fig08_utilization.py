"""Figure 8: tile-granularity coordination raises utilization."""

from conftest import measured


def test_fig08(exp):
    experiment = exp("fig08")
    assert measured(experiment, "gemm_utilization_gain") > 0.02
    assert measured(experiment, "tandem_utilization_gain") > 0.02
    # Utilizations now come from the npu.* telemetry counters; the
    # experiment cross-checks them against the analytic RunResult path.
    assert measured(experiment, "counters_agree_with_analytic") is True
