"""Figure 17: im2col dominates MobileNetV2; RISC-V bottlenecks the LMs."""

from conftest import measured


def test_fig17(exp):
    experiment = exp("fig17")
    assert measured(experiment, "mobilenetv2_im2col_share") > 0.5
    for model in ("bert", "gpt2", "yolov3"):
        assert measured(experiment, f"riscv_dominates_{model}") is True
