"""LLM serving shape assertions + BENCH_llm_serving.json.

One continuous-vs-one-shot batching sweep under a pinned seed, over the
``gpt2_rms`` decode-step costs measured on the NPU cycle model. The
shape the serving layer must deliver:

* both schedulers reach >= 95 % SLO attainment at some offered rate
  (the comparison is not vacuous);
* continuous batching sustains *strictly* more goodput (req/s within
  SLO) than one-shot dynamic batching at that attainment bar — the
  continuous-batching headline;
* continuous TTFT at light load is no worse than one-shot's (joining a
  running batch beats waiting for a padded batch to retire);
* the whole sweep is deterministic: serial and ``--jobs 2`` runs emit
  byte-identical reports.

The measured goodputs and latency percentiles land in
``BENCH_llm_serving.json`` at the repo root so the serving trajectory
is visible across PRs.
"""

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_ARTIFACT = REPO_ROOT / "BENCH_llm_serving.json"

#: A fixed scenario, not a property over all seeds: pin the seed so the
#: sampled arrival process is reproducible.
SEED = "12345"
ATTAINMENT_BAR = 0.95


def _sweep():
    from repro.llm import llm_grid, llm_report, run_llm_sweep
    from repro.serving import LLMServiceCosts

    costs = LLMServiceCosts.resolve("gpt2_rms")
    points = llm_grid(costs=costs, duration_s=5.0)
    return costs, points, run_llm_sweep(points, jobs=1), llm_report


def test_continuous_batching_beats_oneshot_at_slo(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_SEED", SEED)
    from repro.llm import (
        goodput_at_slo,
        llm_report_json,
        run_llm_sweep,
        validate_llm_report,
    )

    costs, points, reports, llm_report = benchmark.pedantic(
        _sweep, rounds=1, iterations=1)
    payload = llm_report(points, reports)
    assert validate_llm_report(payload) == []

    rows = payload["rows"]
    by_sched = {s: [r for r in rows if r["scheduler"] == s]
                for s in ("oneshot", "continuous")}
    oneshot = goodput_at_slo(by_sched["oneshot"], ATTAINMENT_BAR)
    continuous = goodput_at_slo(by_sched["continuous"], ATTAINMENT_BAR)

    # Neither scheduler is degenerate at the bar...
    assert oneshot > 0, (
        "one-shot never reached the attainment bar; the rate ladder "
        "starts too high to make a fair comparison")
    assert continuous > 0
    # ...and continuous batching is strictly better. This is the
    # headline the subsystem exists to reproduce.
    assert continuous > oneshot, (
        f"continuous batching sustained {continuous:.2f} req/s at "
        f">={ATTAINMENT_BAR:.0%} SLO vs one-shot's {oneshot:.2f}")
    assert payload["summary"]["continuous_beats_oneshot"]

    # At the lightest load, joining a running batch must not cost more
    # first-token latency than waiting out a padded one-shot batch.
    min_rate = min(r["rate_rps"] for r in rows)
    light = {r["scheduler"]: r for r in rows if r["rate_rps"] == min_rate}
    assert light["continuous"]["ttft_p95_ms"] <= \
        light["oneshot"]["ttft_p95_ms"]

    # Determinism: --jobs must not change a byte of the report.
    forked = llm_report(points, run_llm_sweep(points, jobs=2))
    assert llm_report_json(forked) == llm_report_json(payload)

    BENCH_ARTIFACT.write_text(json.dumps({
        "config": "gpt2_rms",
        "seed": int(SEED),
        "duration_s": 5.0,
        "max_slots": payload["max_slots"],
        "kv_budget_tokens": payload["kv_budget_tokens"],
        "slo_multiplier": payload["slo_multiplier"],
        "attainment_bar": ATTAINMENT_BAR,
        "prefill_token_us": round(costs.prefill_token_s * 1e6, 3),
        "decode_step_us": round(costs.decode_step_s * 1e6, 3),
        "goodput_at_slo_rps": {
            "oneshot": round(oneshot, 2),
            "continuous": round(continuous, 2),
        },
        "speedup": round(continuous / oneshot, 3),
        "light_load": {
            "rate_rps": min_rate,
            "ttft_p95_ms": {
                "oneshot": round(light["oneshot"]["ttft_p95_ms"], 3),
                "continuous": round(light["continuous"]["ttft_p95_ms"], 3),
            },
            "itl_p95_ms": {
                "oneshot": round(light["oneshot"]["itl_p95_ms"], 3),
                "continuous": round(light["continuous"]["itl_p95_ms"], 3),
            },
        },
    }, indent=2) + "\n")
