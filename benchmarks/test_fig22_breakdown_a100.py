"""Figure 22: GEMM/non-GEMM runtime split, scaled NPU vs A100-CUDA."""

from conftest import measured


def test_fig22(exp):
    experiment = exp("fig22")
    assert measured(
        experiment, "nongemm_share_larger_for_newer_models_on_a100") is True
