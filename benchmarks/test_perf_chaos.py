"""Resilience-under-faults shape assertions + BENCH_chaos.json.

One chaos sweep under a pinned seed: BERT on a 6-device fleet at
120 req/s for 20 s, with a 1 %/s-per-device *permanent* crash hazard
(the TPU-paper "dead machine" case). The shape the resilient serving
stack must deliver:

* at least one device actually crashes (the plan is not vacuous);
* the resilient policy (timeouts + retries + circuit breaker) retains
  >= 90 % of its own fault-free goodput;
* the naive policy — the pre-fault fleet — does not, because every
  request routed to a dead device is simply lost;
* the whole sweep is deterministic: serial and ``--jobs 2`` runs emit
  byte-identical reports.

The measured retentions land in ``BENCH_chaos.json`` at the repo root
so the resilience trajectory is visible across PRs.
"""

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_ARTIFACT = REPO_ROOT / "BENCH_chaos.json"

#: The benchmark is a fixed scenario, not a property over all seeds:
#: pin the seed so the sampled crash schedule is reproducible.
SEED = "12345"
RETENTION_BAR = 0.90


def _sweep():
    from repro.faults import (
        CrashSpec,
        FaultPlan,
        chaos_grid,
        chaos_report,
        run_chaos,
    )
    from repro.serving import ServiceCosts

    plan = FaultPlan(name="crash-1pct",
                     crash=CrashSpec(p_per_device_s=0.01, outage_s=None))
    points = chaos_grid(plan=plan, scales=(1.0,), model="bert",
                        devices=6, rate_rps=120.0, duration_s=20.0,
                        costs=ServiceCosts.resolve(["bert"]))
    return points, run_chaos(points, jobs=1), chaos_report


def test_resilient_policy_holds_goodput_under_crashes(benchmark,
                                                      monkeypatch):
    monkeypatch.setenv("REPRO_SEED", SEED)
    from repro.faults import chaos_report_json, run_chaos, \
        validate_chaos_report

    points, reports, chaos_report = benchmark.pedantic(
        _sweep, rounds=1, iterations=1)
    payload = chaos_report(points, reports)
    assert validate_chaos_report(payload) == []

    faulted = {r["policy"]: r for r in payload["rows"]
               if r["fault_scale"] == 1.0}

    # The hazard actually fired: this is a real outage, not a no-op.
    crashes = faulted["resilient"]["faults"].get("device_crash", 0)
    assert crashes >= 1, "no device crashed; the scenario tests nothing"

    naive = faulted["naive"]["goodput_retention"]
    resilient = faulted["resilient"]["goodput_retention"]
    assert resilient >= RETENTION_BAR, (
        f"resilient policy retained only {resilient:.1%} of fault-free "
        f"goodput (bar: {RETENTION_BAR:.0%})")
    assert naive < RETENTION_BAR, (
        f"naive policy retained {naive:.1%} — the fault plan is too "
        f"gentle to discriminate policies")
    assert resilient > naive

    # The machinery that earns the retention actually engaged.
    assert faulted["resilient"]["retries"] >= 1
    assert faulted["resilient"]["devices_ejected"] >= 1
    assert faulted["naive"]["retries"] == 0

    # Determinism: --jobs must not change a byte of the report.
    forked = chaos_report(points, run_chaos(points, jobs=2))
    assert chaos_report_json(forked) == chaos_report_json(payload)

    BENCH_ARTIFACT.write_text(json.dumps({
        "model": "bert",
        "devices": 6,
        "rate_rps": 120.0,
        "duration_s": 20.0,
        "seed": int(SEED),
        "plan": payload["plan"]["name"],
        "device_crashes": crashes,
        "retention_bar": RETENTION_BAR,
        "goodput_retention": {
            "naive": round(naive, 4),
            "resilient": round(resilient, 4),
        },
        "resilient_retries": faulted["resilient"]["retries"],
        "resilient_ejects": faulted["resilient"]["devices_ejected"],
    }, indent=2) + "\n")
