"""Streaming-monitoring shape assertions + BENCH_monitoring.json.

One seeded incident and two healthy controls, all on the monitored
fleet simulator:

* **crash run** — BERT on 6 devices at 120 req/s for 20 s under a
  1 %/s-per-device crash hazard with 6 s outages (plan ``mon-crash-a``;
  under the pinned seed the first crash lands mid-run). The page
  burn-rate alert must fire within the detection-latency bound of the
  first crash — one SLO deadline for the miss to surface plus the
  2 s long page window plus one short window of slack — and every
  alert must resolve after the outage ends (the post-run drain).
* **fault-free runs** — the same fleet serving a bert+resnet50 zoo mix,
  and the continuous-batching LLM engine at light load, must fire
  exactly zero alerts: a monitor that pages on a healthy fleet is
  worse than no monitor.
* **determinism** — the full sample + alert streams are byte-identical
  between serial and ``--jobs 2`` execution.
* **overhead** — a warm monitored ``repro serve`` subprocess stays
  within 5 % (plus a small absolute slack for process noise) of the
  unmonitored command, because monitoring is observational.

The measured numbers land in ``BENCH_monitoring.json`` at the repo
root so the detection-latency trajectory is visible across PRs.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_ARTIFACT = REPO_ROOT / "BENCH_monitoring.json"

#: A fixed scenario, not a property over all seeds: pin the seed so the
#: sampled crash schedule (and hence the alert stream) is reproducible.
SEED = "12345"
OVERHEAD_BAR = 0.05


def _points():
    from repro.faults import CrashSpec, FaultPlan
    from repro.serving import MonitorPoint, ServiceCosts

    costs = ServiceCosts.resolve(["bert"])
    zoo_costs = ServiceCosts.resolve(["bert", "resnet50"])
    plan = FaultPlan(name="mon-crash-a",
                     crash=CrashSpec(p_per_device_s=0.01, outage_s=6.0))
    crash = MonitorPoint(costs=costs, models=("bert",), devices=6,
                         rate_rps=120.0, duration_s=20.0, fault_plan=plan)
    zoo = MonitorPoint(costs=zoo_costs, models=("bert", "resnet50"),
                       devices=6, rate_rps=60.0, duration_s=20.0)
    return plan, crash, zoo


def _serve_seconds(monitored, runs=2):
    """Warm wall time of a ``repro serve`` subprocess (min over runs)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_SEED"] = SEED
    env.pop("REPRO_MONITOR", None)
    command = [sys.executable, "-m", "repro", "serve", "--model", "bert",
               "--devices", "6", "--rate", "120", "--duration", "20"]
    if monitored:
        command.append("--monitor")
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        subprocess.run(command, capture_output=True, env=env,
                       cwd=REPO_ROOT, check=True)
        best = min(best, time.perf_counter() - start)
    return best


def test_crash_detection_quiet_controls_and_overhead(benchmark,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_SEED", SEED)
    from repro.faults import FaultInjector
    from repro.runtime import parallel_map
    from repro.serving import (
        DEFAULT_SLO_MULTIPLIER,
        run_monitor_point,
        validate_monitor_report,
    )

    plan, crash_point, zoo_point = _points()
    results = benchmark.pedantic(
        lambda: parallel_map(run_monitor_point,
                             [crash_point, zoo_point], jobs=1),
        rounds=1, iterations=1)
    crashed, zoo = results
    for result in results:
        assert validate_monitor_report(result["monitor"]) == []

    # -- the crash run pages within the detection-latency bound --------
    injector = FaultInjector(plan, devices=6, duration_s=20.0)
    assert injector.crashes, "plan sampled no crashes; scenario is vacuous"
    first_crash_s = injector.crashes[0][0]
    assert first_crash_s < 15.0, (
        f"first crash at {first_crash_s:.2f}s leaves no run to observe")
    monitor = crashed["monitor"]
    pages = [e for e in monitor["alerts"]
             if e["severity"] == "page" and e["kind"] == "fire"]
    assert pages, "seeded crash never paged"
    slo_s = (DEFAULT_SLO_MULTIPLIER
             * crash_point.costs.latency_s("bert"))
    page_rule = next(r for r in monitor["rules"]
                     if r["name"] == pages[0]["rule"])
    bound_s = slo_s + page_rule["long_window_s"] + page_rule["short_window_s"]
    detection_s = pages[0]["t_s"] - first_crash_s
    assert 0.0 < detection_s <= bound_s, (
        f"page fired {detection_s:.2f}s after the crash "
        f"(bound {bound_s:.2f}s)")

    # -- and resolves after recovery -----------------------------------
    recovery_s = first_crash_s + plan.crash.outage_s
    resolves = [e for e in monitor["alerts"] if e["kind"] == "resolve"]
    assert resolves, "alerts never resolved"
    assert monitor["active_alerts"] == [], (
        f"still firing after the drain: {monitor['active_alerts']}")
    assert all(e["t_s"] > recovery_s for e in resolves), (
        "an alert resolved while the first outage was still active")
    fires = [e for e in monitor["alerts"] if e["kind"] == "fire"]
    assert all(e["t_s"] >= first_crash_s for e in fires), (
        "an alert fired before any fault was injected")

    # -- fault-free runs stay silent -----------------------------------
    assert zoo["monitor"]["alerts"] == [], "healthy zoo mix paged"
    assert zoo["monitor"]["slo"]["bad"] == 0
    llm_payload = _llm_monitor_payload()
    assert validate_monitor_report(llm_payload) == []
    assert llm_payload["alerts"] == [], "healthy LLM engine paged"
    assert llm_payload["slo"]["bad"] == 0

    # -- determinism: serial vs --jobs, byte for byte ------------------
    forked = parallel_map(run_monitor_point,
                          [crash_point, zoo_point], jobs=2)
    serial_json = json.dumps(results, sort_keys=True)
    assert json.dumps(forked, sort_keys=True) == serial_json

    # -- observational overhead at the serve-command level -------------
    plain_s = _serve_seconds(monitored=False)
    monitored_s = _serve_seconds(monitored=True)
    overhead = monitored_s / plain_s - 1.0
    # Same discipline (and slack) as the telemetry gate: the bar is
    # relative, the absolute term absorbs subprocess start-up noise.
    assert monitored_s <= (1.0 + OVERHEAD_BAR) * plain_s + 0.3, (
        f"monitoring added {monitored_s - plain_s:.2f}s to a "
        f"{plain_s:.2f}s serve run")

    BENCH_ARTIFACT.write_text(json.dumps({
        "model": "bert",
        "devices": 6,
        "rate_rps": 120.0,
        "duration_s": 20.0,
        "seed": int(SEED),
        "plan": plan.name,
        "first_crash_s": round(first_crash_s, 3),
        "detection_latency_s": round(detection_s, 3),
        "detection_bound_s": round(bound_s, 3),
        "alerts": monitor["alerts"],
        "alert_counts": monitor["counts"],
        "fault_free_zoo_alerts": len(zoo["monitor"]["alerts"]),
        "fault_free_llm_alerts": len(llm_payload["alerts"]),
        "serial_vs_jobs_identical": True,
        "overhead_bar": OVERHEAD_BAR,
        "serve_seconds": {
            "plain": round(plain_s, 3),
            "monitored": round(monitored_s, 3),
        },
        "monitored_overhead": round(overhead, 3),
    }, indent=2) + "\n")


def _llm_monitor_payload():
    from repro.serving import (
        LLMMonitor,
        LLMServiceCosts,
        MonitorConfig,
        llm_poisson_requests,
        make_llm_batcher,
    )
    costs = LLMServiceCosts.resolve("gpt2_rms")
    monitor = LLMMonitor(MonitorConfig())
    requests = llm_poisson_requests(4.0, 8.0, (8, 32), (8, 32), 0)
    make_llm_batcher("continuous", costs, monitor=monitor).run(
        requests, rate_rps=4.0, duration_s=8.0)
    return monitor.payload(context={"config": "gpt2_rms"})


def test_monitoring_slo_experiment_shapes(benchmark):
    """The registered harness experiment reports every shape as met."""
    from repro.harness import run_experiment
    experiment = benchmark.pedantic(run_experiment,
                                    args=("monitoring_slo",),
                                    rounds=1, iterations=1)
    for metric, (expected, got) in experiment.summary.items():
        if expected is True:
            assert got is True, f"{metric}: expected True, measured {got}"
    paper_bound, measured_latency = experiment.summary[
        "detection_latency_within_bound_s"]
    assert 0.0 < measured_latency <= paper_bound
    rendered = experiment.render()
    assert "alert log" in rendered
    assert "page-fast-burn" in rendered
