"""Table 2: every design class is implemented as an executable model."""

from conftest import measured


def test_table2(exp):
    experiment = exp("table2")
    assert measured(experiment, "design_classes_implemented") == 5
