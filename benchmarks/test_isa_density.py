"""Micro-benchmark: ISA density — strided walks + compute in 32 bits."""

from repro.compiler import compile_model
from repro.models import build_tinynet


def _compile_and_measure():
    model = compile_model(build_tinynet())
    words = sum(len(cb.tile.program) for cb in model.blocks if cb.tile)
    compute = sum(cb.tile.program.compute_instruction_count()
                  for cb in model.blocks if cb.tile)
    return {"total_words": words, "compute_words": compute,
            "bytes": words * 4}


def test_isa_density(benchmark):
    stats = benchmark.pedantic(_compile_and_measure, rounds=1, iterations=1)
    assert stats["total_words"] > 0
    # Every instruction is one 32-bit word.
    assert stats["bytes"] == 4 * stats["total_words"]
    # Configuration amortizes: compute is a meaningful share.
    assert stats["compute_words"] / stats["total_words"] > 0.1
