"""Ablation: fixed-point precision of the integer operator recipes."""

import math

import numpy as np

from repro.compiler import from_fixed, i_gelu, i_sigmoid, to_fixed


def _sweep():
    xs = np.linspace(-4, 4, 400)
    gelu_ref = xs * 0.5 * (1 + np.vectorize(math.erf)(xs / math.sqrt(2)))
    sig_ref = 1 / (1 + np.exp(-xs))
    errors = {}
    for bits in (6, 8, 10, 12, 14):
        g = from_fixed(i_gelu(to_fixed(xs, bits), bits), bits)
        s = from_fixed(i_sigmoid(to_fixed(xs, bits), bits), bits)
        errors[bits] = {
            "gelu": float(np.max(np.abs(g - gelu_ref))),
            "sigmoid": float(np.max(np.abs(s - sig_ref))),
        }
    return errors


def test_precision_sweep(benchmark):
    errors = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # Error shrinks monotonically-ish with precision and is small at Q12+.
    assert errors[6]["sigmoid"] > errors[12]["sigmoid"]
    assert errors[12]["gelu"] < 0.03
    assert errors[14]["sigmoid"] < 0.01
