"""Cold vs. warm evaluation-pipeline timing (the PR-over-PR perf track).

Runs a representative experiment subset through ``python -m
repro.harness`` twice against the same cache directory: once cold
(empty cache) and once warm (everything served from the
content-addressed cache). The warm run must be at least 2x faster and
byte-identical, as must a parallel ``--jobs`` run. The measured numbers
land in ``BENCH_eval_pipeline.json`` at the repo root so the perf
trajectory is visible across PRs.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPERIMENTS = ("fig14", "fig15", "fig16", "fig18", "fig22")
BENCH_ARTIFACT = REPO_ROOT / "BENCH_eval_pipeline.json"


def _run_harness(cache_dir, *extra, verify=True, telemetry=False):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if not verify:
        env["REPRO_VERIFY"] = "0"
    if telemetry:
        env["REPRO_TELEMETRY"] = "1"
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.harness", *EXPERIMENTS, *extra],
        capture_output=True, env=env, cwd=REPO_ROOT, check=True)
    return time.perf_counter() - start, proc.stdout


def test_warm_pipeline_at_least_twice_as_fast(tmp_path):
    cache_dir = tmp_path / "repro_cache"
    cold_seconds, cold_stdout = _run_harness(cache_dir)
    warm_seconds, warm_stdout = _run_harness(cache_dir)
    jobs_seconds, jobs_stdout = _run_harness(cache_dir, "--jobs", "2")
    # Warm runs serve compiled programs (already verified at compile
    # time) straight from the cache, so static verification must cost
    # nothing once the cache is hot.
    noverify_seconds, noverify_stdout = _run_harness(cache_dir,
                                                     verify=False)
    # Telemetry is observational only: with REPRO_TELEMETRY=1 the same
    # warm run records counters + spans yet must not change one output
    # byte, and the disabled-by-default path (every run above) costs
    # nothing more than attribute checks.
    telemetry_seconds, telemetry_stdout = _run_harness(cache_dir,
                                                       telemetry=True)

    # Correctness first: the cache and the process pool may only change
    # the speed, never a single output byte.
    assert warm_stdout == cold_stdout
    assert jobs_stdout == cold_stdout
    assert noverify_stdout == cold_stdout
    assert telemetry_stdout == cold_stdout

    BENCH_ARTIFACT.write_text(json.dumps({
        "experiments": list(EXPERIMENTS),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_jobs2_seconds": round(jobs_seconds, 3),
        "warm_verify_off_seconds": round(noverify_seconds, 3),
        "warm_telemetry_seconds": round(telemetry_seconds, 3),
        "speedup_warm_over_cold": round(cold_seconds / warm_seconds, 2),
        "verify_warm_overhead": round(
            warm_seconds / noverify_seconds - 1.0, 3),
        "telemetry_warm_overhead": round(
            telemetry_seconds / warm_seconds - 1.0, 3),
    }, indent=2) + "\n")

    assert warm_seconds <= 0.5 * cold_seconds, (
        f"warm run {warm_seconds:.2f}s not 2x faster than "
        f"cold {cold_seconds:.2f}s")
    # Generous noise margin; the recorded artifact tracks the real gap.
    assert warm_seconds <= 1.25 * noverify_seconds, (
        f"verification added {warm_seconds - noverify_seconds:.2f}s to a "
        f"warm run")
    # The telemetry layer must stay within 5% of the warm-run time even
    # when it is actively recording; the disabled default can only be
    # cheaper. A small absolute slack absorbs subprocess start-up noise.
    assert telemetry_seconds <= 1.05 * warm_seconds + 0.3, (
        f"telemetry added {telemetry_seconds - warm_seconds:.2f}s to a "
        f"warm run ({warm_seconds:.2f}s)")


def _run_serve(*extra, monitor_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_MONITOR", None)
    if monitor_env is not None:
        env["REPRO_MONITOR"] = monitor_env
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--model", "bert",
         "--devices", "6", "--rate", "120", "--duration", "10", *extra],
        capture_output=True, env=env, cwd=REPO_ROOT, check=True)
    return time.perf_counter() - start, proc.stdout


def test_monitoring_is_observational_and_cheap(tmp_path):
    """The serve monitor mirrors the telemetry discipline (ISSUE 9).

    ``REPRO_MONITOR=0`` must make ``--monitor`` a byte-for-byte no-op,
    and an actively-monitoring warm serve run must stay within 5% of
    the unmonitored command (same absolute slack as the telemetry gate
    above, for subprocess start-up noise).
    """
    plain_json = tmp_path / "plain.json"
    off_json = tmp_path / "off.json"
    # Warm the compile cache once so every timed run below is warm.
    _run_serve()
    plain_seconds, plain_stdout = _run_serve("--json", str(plain_json))
    off_seconds, off_stdout = _run_serve("--monitor", "--json",
                                         str(off_json), monitor_env="0")
    monitored_seconds, monitored_stdout = _run_serve("--monitor")

    # Kill switch: byte-identical stdout and report JSON.
    assert off_stdout.replace(bytes(str(off_json), "utf-8"),
                              bytes(str(plain_json), "utf-8")) == plain_stdout
    assert off_json.read_bytes() == plain_json.read_bytes()
    # Monitoring is additive: the serving table is untouched, the
    # dashboard only appends after it.
    table = plain_stdout.split(b"wrote")[0]
    assert monitored_stdout.startswith(table)
    assert b"alert" in monitored_stdout
    assert monitored_seconds <= 1.05 * plain_seconds + 0.3, (
        f"monitoring added {monitored_seconds - plain_seconds:.2f}s to a "
        f"{plain_seconds:.2f}s serve run")
    assert off_seconds <= 1.05 * plain_seconds + 0.3
