"""Figure 21: iso-TOPs vs A100 — parity with TensorRT, 4x vs CUDA."""

from conftest import measured, within


def test_fig21(exp):
    experiment = exp("fig21")
    # Parity band vs TensorRT (paper: +2.5%).
    trt = measured(experiment, "avg_speedup_vs_a100_tensorrt")
    assert 0.6 <= trt <= 1.6
    within(experiment, "avg_speedup_vs_a100_cuda", rel=0.40)
    assert measured(experiment, "a100_wins_vgg16") is True
    assert measured(experiment, "a100_wins_yolov3") is True
    assert measured(experiment, "npu_wins_bert") is True
