"""Figure 15: 39.2x / 20.6x energy reduction (paper avgs)."""

from conftest import within


def test_fig15(exp):
    experiment = exp("fig15")
    within(experiment, "avg_energy_reduction_vs_baseline1", rel=0.60)
    within(experiment, "avg_energy_reduction_vs_baseline2", rel=0.80)
    # Baseline 1 (always through the 165 W CPU) burns more than Baseline 2.
    s = experiment.summary
    assert (s["avg_energy_reduction_vs_baseline1"][1]
            > s["avg_energy_reduction_vs_baseline2"][1])
