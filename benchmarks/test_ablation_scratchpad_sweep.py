"""Ablation: Interim BUF capacity vs achievable tiling."""

from dataclasses import replace

from repro.npu import NPUTandem, table3_config
from repro.simulator.params import SimParams


def _config_with_buf(kb):
    base = table3_config()
    tandem = replace(base.sim.tandem, interim_buf_kb=kb)
    return replace(base, sim=SimParams(tandem=tandem, dram=base.sim.dram,
                                       energy=base.sim.energy,
                                       overlay=base.sim.overlay))


def _sweep():
    out = {}
    for kb in (16, 64, 256):
        npu = NPUTandem(_config_with_buf(kb))
        model = npu.compile("resnet50")
        out[kb] = {
            "max_tiles": max(cb.tiles for cb in model.blocks),
            "seconds": npu.evaluate(model).total_seconds,
        }
    return out


def test_scratchpad_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # Smaller buffers force more tiles; performance never improves by
    # shrinking the scratchpads.
    assert results[16]["max_tiles"] >= results[256]["max_tiles"]
    assert results[16]["seconds"] >= results[256]["seconds"] * 0.95
