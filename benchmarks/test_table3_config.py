"""Table 3: the evaluated configuration matches the paper exactly."""


def test_table3(exp):
    experiment = exp("table3")
    for metric, (paper, got) in experiment.summary.items():
        assert paper == got, metric
