"""Figure 3: non-GEMM layers dominate newer models on the baselines."""

from conftest import measured, within


def test_fig03(exp):
    experiment = exp("fig03")
    assert measured(experiment, "newer_models_more_nongemm_bound") is True
    within(experiment, "efficientnet_nongemm_share_baseline2", rel=0.40)
