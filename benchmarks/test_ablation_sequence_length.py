"""Ablation: non-GEMM share vs transformer sequence length.

Attention's softmax/transpose work grows O(S^2) while projection GEMMs
grow O(S) — the "emerging operators" pressure the paper argues will only
increase. Sweeps BERT's sequence length and tracks the Tandem share.
"""

from repro.compiler import compile_model
from repro.models.bert import build_bert
from repro.npu import NPUTandem


def _sweep():
    npu = NPUTandem()
    out = {}
    for seq in (64, 128, 256):
        graph = build_bert(seq=seq, layers=4)
        result = npu.evaluate(compile_model(graph))
        busy = result.gemm_seconds + result.nongemm_seconds
        out[seq] = {
            "seconds": result.total_seconds,
            "nongemm_share": result.nongemm_seconds / busy,
            "softmax_seconds": result.per_op_seconds.get("Softmax", 0.0),
        }
    return out


def test_sequence_length_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # Longer contexts spend relatively more on the attention non-GEMMs.
    assert results[256]["softmax_seconds"] > 4 * results[64]["softmax_seconds"]
    assert results[256]["seconds"] > results[64]["seconds"]
