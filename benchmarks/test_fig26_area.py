"""Figure 26: 1.02 mm2 at 65 nm with the published breakdown."""

from conftest import within


def test_fig26(exp):
    experiment = exp("fig26")
    within(experiment, "total_mm2", rel=0.02)
    within(experiment, "alu_fraction", rel=0.02)
    within(experiment, "interim_buf_fraction", rel=0.02)
    within(experiment, "permute_fraction", rel=0.02)
