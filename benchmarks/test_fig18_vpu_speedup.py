"""Figure 18: 2.6x vs TPU+VPU; loop specialization is the biggest lever."""

from conftest import measured, within


def test_fig18(exp):
    experiment = exp("fig18")
    within(experiment, "avg_speedup_vs_vpu", rel=0.35)
    s = experiment.summary
    # Ordering of the design-decision factors (paper: 2.1 > 1.4 > 1.1 > 0.8).
    assert (s["loop_specialization_factor"][1]
            > s["regfile_removal_factor"][1]
            > s["obuf_ownership_factor"][1])
    assert measured(experiment, "obuf_ownership_factor") >= 1.0
    assert measured(experiment, "special_function_factor") < 1.0
