"""Ablation: Code Repeater nest depth vs issue efficiency."""

from repro.simulator import BodyOpMeta, TandemParams, VpuOverlay, nest_timing


def _sweep():
    params = TandemParams()
    op = BodyOpMeta(dst_inner_stride=1, src_inner_strides=(1, 1),
                    mem_reads=2, mem_writes=1)
    results = {}
    total = 4096
    for depth in (1, 2, 4, 8):
        # Same iteration space factored into deeper nests, inner stays
        # vectorizable.
        outer = [2] * (depth - 1)
        inner = total // (2 ** (depth - 1))
        counts = outer + [inner]
        tandem = nest_timing(counts, [op], params, VpuOverlay())
        conventional = nest_timing(counts, [op], params,
                                   VpuOverlay(conventional_loops=True))
        results[depth] = {
            "tandem": tandem.cycles,
            "conventional": conventional.cycles,
        }
    return results


def test_loop_depth_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # The Code Repeater's cost is depth-insensitive; branch-based loops
    # degrade as nesting deepens (more wrap bookkeeping).
    assert results[8]["tandem"] <= results[1]["tandem"] * 1.05
    assert results[8]["conventional"] > results[1]["conventional"]
